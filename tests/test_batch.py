"""Tests for the vectorized batch backend (``repro.batch``).

Covers the four layers the subsystem spans: the ``BatchKnowledgeState``
(bulk array operations + per-lane protocol + columnar event buffering), the
segment-based lazy :class:`~repro.core.events.EventLog`, the steady-topology
skip machinery on adversary stages, and the end-to-end contract — records
produced by the batch kernel are field-identical to serial execution,
whether reached through :meth:`BatchBackend.run_batch`, the differential
harness, or the fluent :class:`~repro.api.Experiment` pipeline's automatic
dispatch.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.api import Experiment
from repro.backends import BatchBackend, get_backend
from repro.backends.differential import validate_backends
from repro.batch.backend import can_vectorize_spec
from repro.core.events import (
    SEG_COLUMN,
    SEG_TRIPLES,
    EventLog,
    TokenLearning,
    column_segment,
)
from repro.core.problem import single_source_problem
from repro.core.state import BatchKnowledgeState
from repro.core.tokens import Token
from repro.dynamics.graph_sequence import EdgeIdTrace
from repro.scenarios import ScenarioSpec, run_spec
from repro.scenarios.registry import ADVERSARY_REGISTRY
from repro.scenarios.runner import record_from_result, repetition_seed
from repro.utils.validation import ConfigurationError


def flooding_spec(**overrides):
    """A vectorizable scenario: flooding under an oblivious adversary."""
    fields = dict(
        problem="single-source",
        problem_params={"num_nodes": 12, "num_tokens": 8},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": 4},
        adversary="static-random",
        adversary_params={"num_nodes": 12},
        seed=17,
        repetitions=4,
        name="batch-test",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def adaptive_spec(**overrides):
    """A non-vectorizable scenario: the adaptive lower-bound adversary."""
    fields = dict(
        problem="single-source",
        problem_params={"num_nodes": 10, "num_tokens": 6},
        algorithm="single-source",
        adversary="star-recenter",
        seed=23,
        repetitions=3,
        name="batch-test-fallback",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestBatchKnowledgeState:
    def make_state(self, lanes=3, n=6, k=4):
        problem = single_source_problem(num_nodes=n, num_tokens=k, source=0)
        return BatchKnowledgeState(problem, lanes=lanes), problem

    def test_initial_knowledge_broadcasts_across_lanes(self):
        state, problem = self.make_state(lanes=3, n=6, k=4)
        source = state.nodes[0]
        for lane in range(3):
            state.select_lane(lane)
            assert state.known_tokens(source) == problem.initial_knowledge[source]
            assert state.is_node_complete(source)
            assert not state.is_node_complete(state.nodes[1])

    def test_per_lane_learn_touches_only_that_lane(self):
        state, _ = self.make_state(lanes=2)
        token = state.tokens[1]
        node = state.nodes[2]
        assert state.select_lane(0).learn_index(2, 1)
        assert state.select_lane(0).knows(node, token)
        assert not state.select_lane(1).knows(node, token)
        # Re-learning is a no-op and buffers no second event.
        assert not state.select_lane(0).learn_index(2, 1)
        assert len(state.drain_lane_segments(0)) == 1
        assert state.drain_lane_segments(1) == []

    def test_learn_token_bulk_updates_counts_and_buffers_columns(self):
        state, _ = self.make_state(lanes=2, n=6, k=4)
        state.begin_round(7)
        learners = np.zeros((2, 6), dtype=np.bool_)
        learners[0, [2, 4]] = True
        learners[1, 3] = True
        state.learn_token_bulk(1, learners)
        token = state.tokens[1]
        assert state.select_lane(0).knows(state.nodes[2], token)
        assert state.select_lane(0).knows(state.nodes[4], token)
        assert state.select_lane(1).knows(state.nodes[3], token)
        assert state.known_counts[0, 2] == 1 and state.known_counts[1, 3] == 1

        lane0 = state.drain_lane_segments(0)
        assert len(lane0) == 1
        tag, round_index, seg_token, indices, _nodes = lane0[0]
        assert tag is SEG_COLUMN
        assert round_index == 7
        assert seg_token == token
        assert indices == [2, 4]  # node indices ascending within the lane
        (lane1,) = state.drain_lane_segments(1)
        assert lane1[3] == [3]
        # Draining clears the buffers.
        assert state.drain_lane_segments(0) == []

    def test_serial_drain_expands_segments_to_pairs(self):
        state, _ = self.make_state(lanes=1, n=6, k=4)
        state.begin_round(3)
        learners = np.zeros((1, 6), dtype=np.bool_)
        learners[0, [1, 5]] = True
        state.learn_token_bulk(2, learners)
        state.learn_index(4, 3)
        pairs = state.select_lane(0).drain_learnings()
        token2, token3 = state.tokens[2], state.tokens[3]
        assert pairs == [
            (state.nodes[1], token2),
            (state.nodes[5], token2),
            (state.nodes[4], token3),
        ]
        assert state.drain_learnings() == []

    def test_completed_lanes(self):
        state, _ = self.make_state(lanes=2, n=4, k=2)
        learners = np.ones((2, 4), dtype=np.bool_)
        learners &= ~state.holders_column(0)
        state.learn_token_bulk(0, learners)
        learners = np.zeros((2, 4), dtype=np.bool_)
        learners[1] = ~state.holders_column(1)[1]
        state.learn_token_bulk(1, learners)
        assert state.completed_lanes().tolist() == [False, True]


class TestEventLogSegments:
    def test_record_returns_the_event(self):
        log = EventLog()
        node, token = 0, Token(source=0, index=1)
        event = log.record(2, node, token)
        assert event == TokenLearning(round_index=2, node=node, token=token)
        assert log.events == [event]
        assert log.total_learnings() == 1

    def test_record_bulk_and_lazy_counts(self):
        log = EventLog()
        t0, t1 = Token(source=0, index=1), Token(source=0, index=2)
        log.record_bulk(1, [(0, t0), (1, t0)])
        log.record_bulk(3, [(0, t1)])
        assert log.total_learnings() == 3
        assert log.learnings_in_round(1) == 2
        assert log.learnings_in_round(2) == 0
        assert log.learnings_of_node(0) == 2
        assert log.rounds_with_learnings() == [1, 3]
        assert log.last_learning_round() == 3
        assert [event.round_index for event in log] == [1, 1, 3]

    def test_extend_segments_matches_per_event_recording(self):
        nodes = (0, 1, 2, 3)
        t0, t1 = Token(source=0, index=1), Token(source=0, index=2)
        lazy = EventLog()
        lazy.extend_segments(
            [
                column_segment(1, t0, [0, 2], nodes),
                (SEG_TRIPLES, [(2, 3, t1)]),
                column_segment(4, t1, [1], nodes),
            ]
        )
        eager = EventLog()
        for round_index, node, token in [(1, 0, t0), (1, 2, t0), (2, 3, t1), (4, 1, t1)]:
            eager.record(round_index, node, token)
        assert lazy.events == eager.events
        assert lazy.total_learnings() == eager.total_learnings() == 4
        for round_index in range(6):
            assert lazy.learnings_in_round(round_index) == eager.learnings_in_round(
                round_index
            )
        assert lazy.max_learnings_in_a_round() == 2

    def test_empty_segments_are_dropped(self):
        log = EventLog()
        log.record_bulk(1, [])
        log.extend_segments([])
        assert log.total_learnings() == 0
        assert log.events == []
        assert log.last_learning_round() is None

    def test_record_after_materialization_stays_consistent(self):
        log = EventLog()
        t0 = Token(source=0, index=1)
        log.record_bulk(1, [(0, t0)])
        assert log.total_learnings() == 1 and len(log.events) == 1  # materialize
        log.record(2, 1, t0)
        assert log.total_learnings() == 2
        assert [event.node for event in log.events] == [0, 1]
        assert log.learnings_in_round(2) == 1
        assert log.learnings_of_node(1) == 1


class TestSteadyTopology:
    def test_schedule_adversaries_declare_their_steady_round(self):
        adversary = ADVERSARY_REGISTRY.create("static-random", num_nodes=8)
        # A static schedule repeats its single graph forever.
        assert adversary.steady_after_round == 1

    def test_adaptive_adversaries_do_not(self):
        adversary = ADVERSARY_REGISTRY.create("star-recenter")
        assert getattr(adversary, "steady_after_round", None) is None

    def test_record_unchanged_many_equals_repeated_record_unchanged(self):
        def trace():
            return EdgeIdTrace((0, 1), lambda eid: (0, 1), keep_history=True)

        ids = frozenset({1})
        many, repeated = trace(), trace()
        many.record_ids(ids, ids, frozenset())
        repeated.record_ids(ids, ids, frozenset())
        many.record_unchanged_many(3)
        for _ in range(3):
            repeated.record_unchanged()
        assert many.num_rounds == repeated.num_rounds == 4
        for round_index in range(1, 5):
            assert many.edges_in_round(round_index) == repeated.edges_in_round(
                round_index
            )
        # A non-positive catch-up count is a no-op.
        many.record_unchanged_many(0)
        assert many.num_rounds == 4


class TestBatchIdentity:
    def test_vectorized_records_match_serial(self):
        spec = flooding_spec()
        assert can_vectorize_spec(spec)
        serial = run_spec(spec)
        results = BatchBackend().run_batch(spec)
        batch = [
            record_from_result(spec, repetition, repetition_seed(spec, repetition), result)
            for repetition, result in enumerate(results)
        ]
        assert batch == serial

    def test_single_source_vectorized_records_match_serial(self):
        """The single-source batch program replays the fast program per lane.

        churn keeps inserting/removing edges every round, so the per-lane
        edge histories (the new > idle > contributive request priority) are
        exercised; the steady static adversary exercises the
        stages_advanced guard (stale stage inserted_ids after the steady
        round must not be re-consumed).
        """
        for adversary, params in (("churn", {}), ("static-random", {"num_nodes": 10})):
            spec = flooding_spec(
                problem_params={"num_nodes": 10, "num_tokens": 8},
                algorithm="single-source",
                algorithm_params={},
                adversary=adversary,
                adversary_params=params,
                seed=7,
            )
            assert can_vectorize_spec(spec)
            serial = run_spec(spec)
            results = BatchBackend().run_batch(spec)
            batch = [
                record_from_result(
                    spec, repetition, repetition_seed(spec, repetition), result
                )
                for repetition, result in enumerate(results)
            ]
            assert batch == serial, adversary

    def test_fallback_records_match_serial(self):
        spec = adaptive_spec()
        assert not can_vectorize_spec(spec)
        serial = run_spec(spec)
        results = BatchBackend().run_batch(spec)
        batch = [
            record_from_result(spec, repetition, repetition_seed(spec, repetition), result)
            for repetition, result in enumerate(results)
        ]
        assert batch == serial

    def test_run_batch_honors_repetition_subset(self):
        spec = flooding_spec(repetitions=5)
        all_results = BatchBackend().run_batch(spec)
        subset = BatchBackend().run_batch(spec, repetitions=[1, 3])
        assert [r.rounds for r in subset] == [
            all_results[1].rounds,
            all_results[3].rounds,
        ]
        assert BatchBackend().run_batch(spec, repetitions=[]) == []

    def test_differential_validation_accepts_batch(self):
        report = validate_backends(
            [flooding_spec(repetitions=2), adaptive_spec(repetitions=1)],
            candidate="batch",
        )
        assert report.candidate == "batch"
        assert report.passed, [o.describe() for o in report.failures]

    def test_execution_mode_classification(self):
        backend = get_backend("batch")
        spec = flooding_spec()
        from repro.scenarios.runner import materialize

        scenario = materialize(spec)
        assert backend.execution_mode(scenario.algorithm, scenario.adversary) == (
            "vectorized"
        )
        fallback = materialize(adaptive_spec())
        assert backend.execution_mode(fallback.algorithm, fallback.adversary) == (
            "fallback"
        )


class TestExperimentAutoBatching:
    def grid(self):
        return (
            Experiment.grid(
                algorithm="flooding",
                adversary="static-random",
                num_nodes=[8, 12],
                num_tokens=6,
            )
            .seeds(3)
        )

    def test_auto_batched_records_match_forced_bitset(self):
        auto = self.grid().run().records()
        serial = self.grid().backend("bitset").run().records()
        # The backend choice is recorded (top-level and inside the embedded
        # spec); everything else must be identical.
        def strip(record):
            record = {key: value for key, value in record.items() if key != "backend"}
            record["spec"] = {
                key: value for key, value in record["spec"].items() if key != "backend"
            }
            return record

        assert [strip(r) for r in auto] == [strip(r) for r in serial]

    def test_store_backed_rerun_executes_nothing(self, tmp_path):
        store = tmp_path / "warehouse"
        first = self.grid().store(store).run()
        assert len(first.records()) == 6
        plan = self.grid().store(store).plan()
        assert len(plan.pending) == 0
        assert len(plan.cached) == 6


def assert_batch_matches_serial(spec):
    """Run ``spec`` both ways and require field-identical records."""
    assert can_vectorize_spec(spec), spec.algorithm
    serial = run_spec(spec)
    results = BatchBackend().run_batch(spec)
    batch = [
        record_from_result(spec, repetition, repetition_seed(spec, repetition), result)
        for repetition, result in enumerate(results)
    ]
    assert batch == serial, spec.label


class TestFullGridIdentity:
    """Per-round lockstep identity for the programs added to the grid.

    Every registered algorithm now ships a batch program; these tests pin
    the per-lane replay programs (multi-source, oblivious two-phase) and
    the bulk-vectorized rewrites (one-shot-flooding, naive-unicast) to the
    serial bitset kernel, field for field — rounds, message statistics,
    event order, completion — under both churning and steady topologies.
    """

    def multi_source_spec(self, **overrides):
        fields = dict(
            problem="multi-source",
            problem_params={"num_nodes": 10, "num_tokens": 8, "num_sources": 3},
            algorithm="multi-source",
            adversary="churn",
            adversary_params={"changes_per_round": 2},
            seed=29,
            repetitions=4,
            name="batch-grid-test",
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_multi_source_batch_program_matches_serial(self):
        for adversary, params in (
            ("churn", {"changes_per_round": 2}),
            ("static-random", {"num_nodes": 10}),
        ):
            assert_batch_matches_serial(
                self.multi_source_spec(adversary=adversary, adversary_params=params)
            )

    def test_oblivious_two_phase_matches_serial(self):
        """Real phase 1: every lane walks its own RNG-driven random walks."""
        assert_batch_matches_serial(
            self.multi_source_spec(
                algorithm="oblivious",
                algorithm_params={"force_two_phase": True},
                seed=31,
            )
        )

    def test_oblivious_phase_skip_matches_serial(self):
        """Below-threshold regime: phase 1 skipped, machines active from setup."""
        assert_batch_matches_serial(
            self.multi_source_spec(
                algorithm="oblivious",
                algorithm_params={"force_two_phase": False},
                seed=37,
            )
        )

    def test_oblivious_phase1_round_limit_matches_serial(self):
        """The force-delivery safeguard (limit expiry) must match serially."""
        assert_batch_matches_serial(
            self.multi_source_spec(
                algorithm="oblivious",
                algorithm_params={"force_two_phase": True, "phase1_round_limit": 3},
                seed=41,
            )
        )

    def test_one_shot_flooding_bulk_matches_serial(self):
        """The bulk matmul rewrite must keep serial event order exactly.

        Serial order: receivers ascending, senders ascending within a
        receiver, and a learned token's event lands at its lowest-index
        delivering sender — the lexsort in the program reproduces this.
        """
        for num_tokens in (10, 70):  # one word and two words of queue state
            assert_batch_matches_serial(
                self.multi_source_spec(
                    problem="random-placement",
                    problem_params={"num_nodes": 12, "num_tokens": num_tokens},
                    algorithm="one-shot-flooding",
                    algorithm_params={},
                    adversary="churn",
                    adversary_params={"changes_per_round": 3},
                    seed=43,
                )
            )

    def test_naive_unicast_bulk_matches_serial(self):
        """The lowest-set-bit rewrite must pick serial tokens per pair.

        k=70 forces multi-word know/sent masks (the uint64 word loop), and
        churn exercises the considered-pairs quiescence bookkeeping.
        """
        for num_tokens in (8, 70):
            assert_batch_matches_serial(
                self.multi_source_spec(
                    problem_params={
                        "num_nodes": 10,
                        "num_tokens": num_tokens,
                        "num_sources": 3,
                    },
                    algorithm="naive-unicast",
                    algorithm_params={},
                    seed=47,
                )
            )

    def test_every_registered_algorithm_has_a_batch_program(self):
        from repro.batch.backend import batch_program_names
        from repro.scenarios.registry import ALGORITHM_REGISTRY

        assert batch_program_names() == sorted(ALGORITHM_REGISTRY.names())


class TestBatchSpeedupGate:
    def entry(self, scenario, algorithm, n, speedup):
        return {
            "scenario": scenario,
            "algorithm": algorithm,
            "n": n,
            "speedup": {"batch": speedup},
        }

    def test_any_entry_below_one_fails_and_is_named(self):
        from repro.benchmark import batch_speedup_gate

        entries = [
            self.entry("sweep-flooding-n128", "flooding", 128, 4.0),
            self.entry("sweep-oblivious-n8", "oblivious", 8, 0.91),
        ]
        passed, message = batch_speedup_gate(entries, 3.0)
        assert not passed
        assert "sweep-oblivious-n8" in message
        assert "0.91" in message

    def test_worst_offender_is_reported(self):
        from repro.benchmark import batch_speedup_gate

        entries = [
            self.entry("sweep-flooding-n128", "flooding", 128, 4.0),
            self.entry("sweep-multi-source-n12", "multi-source", 12, 0.97),
            self.entry("sweep-oblivious-n8", "oblivious", 8, 0.85),
        ]
        passed, message = batch_speedup_gate(entries, 3.0)
        assert not passed
        assert "2 of 3 entries" in message
        assert "sweep-oblivious-n8" in message

    def test_flooding_floor_still_applies(self):
        from repro.benchmark import batch_speedup_gate

        entries = [
            self.entry("sweep-flooding-n128", "flooding", 128, 2.5),
            self.entry("sweep-oblivious-n8", "oblivious", 8, 1.1),
        ]
        passed, message = batch_speedup_gate(entries, 3.0)
        assert not passed
        assert "sweep-flooding-n128" in message

    def test_all_entries_passing_clears_the_gate(self):
        from repro.benchmark import batch_speedup_gate

        entries = [
            self.entry("sweep-flooding-n64", "flooding", 64, 3.2),
            self.entry("sweep-flooding-n128", "flooding", 128, 4.1),
            self.entry("sweep-oblivious-n8", "oblivious", 8, 1.1),
        ]
        passed, message = batch_speedup_gate(entries, 3.0)
        assert passed
        assert "4.1" in message


class TestNumpyGate:
    def test_supports_refuses_without_numpy(self, monkeypatch):
        import repro.batch.backend as backend_module

        monkeypatch.setattr(backend_module, "numpy_available", lambda: False)
        reason = BatchBackend().supports(None, None, None)
        assert reason is not None and "repro[fast]" in reason

    def test_run_batch_raises_configuration_error_without_numpy(self, monkeypatch):
        import repro.batch.backend as backend_module

        def missing(feature="the batch backend"):
            raise ConfigurationError(f"{feature} needs numpy")

        monkeypatch.setattr(backend_module, "require_numpy", missing)
        with pytest.raises(ConfigurationError, match="numpy"):
            BatchBackend().run_batch(flooding_spec())
