"""Tests for the Section-2 lower-bound adversary (free edges, K' sets, potential)."""

import random

import pytest

from repro.adversaries.lower_bound import LowerBoundAdversary
from repro.algorithms.flooding import FloodingAlgorithm
from repro.analysis.potential import PotentialTracker
from repro.core.engine import run_execution
from repro.core.messages import TokenMessage
from repro.core.observation import RoundObservation
from repro.core.problem import random_assignment_problem, single_source_problem
from repro.core.tokens import Token
from repro.dynamics.connectivity import is_connected
from repro.utils.validation import SimulationError


def observation_with_broadcasts(problem, broadcasts, knowledge=None):
    knowledge = knowledge or {node: problem.initial_knowledge[node] for node in problem.nodes}
    return RoundObservation(round_index=1, knowledge=knowledge, broadcast_payloads=broadcasts)


class TestSetup:
    def test_kprime_sets_sampled_at_reset(self):
        problem = random_assignment_problem(12, 10, seed=1)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(2))
        kprime = adversary.kprime_sets
        assert set(kprime) == set(problem.nodes)
        total = sum(len(tokens) for tokens in kprime.values())
        # Expectation is nk/4 = 30; allow generous slack.
        assert 5 <= total <= 70

    def test_initial_potential_at_most_point_eight_nk(self):
        problem = random_assignment_problem(20, 30, inclusion_probability=0.25, seed=3)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(4))
        assert adversary.initial_potential() <= 0.8 * 20 * 30

    def test_requires_observation(self):
        problem = random_assignment_problem(8, 5, seed=5)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(6))
        with pytest.raises(SimulationError):
            adversary.edges_for_round(1, None)


class TestFreeEdges:
    def test_silent_round_all_edges_free(self):
        problem = random_assignment_problem(8, 5, seed=7)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(8))
        observation = observation_with_broadcasts(problem, {node: None for node in problem.nodes})
        free = adversary.free_edges(observation)
        assert len(free) == 8 * 7 // 2

    def test_graph_is_connected_and_sparse(self):
        problem = random_assignment_problem(10, 6, seed=9)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(10))
        observation = observation_with_broadcasts(
            problem, {node: None for node in problem.nodes}
        )
        edges = set(adversary.edges_for_round(1, observation))
        assert is_connected(problem.nodes, edges)
        assert len(edges) <= 2 * len(problem.nodes)

    def test_broadcasting_an_unknown_token_makes_edges_non_free(self):
        # Node 0 is the only node that knows anything; make it broadcast a
        # token the other nodes do not know and that is (likely) not in K'.
        problem = single_source_problem(6, 4)
        adversary = LowerBoundAdversary(inclusion_probability=0.0)
        adversary.reset(problem, random.Random(11))
        token = problem.tokens[0]
        broadcasts = {node: None for node in problem.nodes}
        broadcasts[0] = TokenMessage(token)
        observation = observation_with_broadcasts(problem, broadcasts)
        free = adversary.free_edges(observation)
        # With K' empty, no edge incident to node 0 can be free.
        assert all(0 not in edge for edge in free)

    def test_sparse_assignment_yields_single_free_component(self):
        problem = random_assignment_problem(20, 15, seed=12)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, random.Random(13))
        # Only one broadcasting node: well below n / (c log n) for c small.
        broadcasts = {node: None for node in problem.nodes}
        broadcasts[3] = TokenMessage(problem.tokens[0])
        observation = observation_with_broadcasts(problem, broadcasts)
        adversary.edges_for_round(1, observation)
        stats = adversary.round_stats[-1]
        assert stats.broadcasting_nodes == 1
        # Lemma 2.2: a sparse token assignment leaves few components (usually 1).
        assert stats.free_components <= 2


class TestEndToEndAgainstFlooding:
    def test_flooding_completes_and_potential_reaches_nk(self):
        problem = random_assignment_problem(12, 8, seed=14)
        adversary = LowerBoundAdversary()
        result = run_execution(problem, FloodingAlgorithm(), adversary, seed=15)
        assert result.completed
        tracker = PotentialTracker(problem, adversary.kprime_sets)
        trajectory = tracker.replay(result.events, result.rounds)
        assert trajectory.final == tracker.maximum_potential()
        assert trajectory.initial <= 0.85 * 12 * 8

    def test_round_stats_cover_every_round(self):
        problem = random_assignment_problem(10, 6, seed=16)
        adversary = LowerBoundAdversary()
        result = run_execution(problem, FloodingAlgorithm(), adversary, seed=17)
        assert len(adversary.round_stats) == result.rounds
        assert adversary.max_free_components() >= 1

    def test_per_round_potential_increase_is_bounded_by_components(self):
        problem = random_assignment_problem(12, 8, seed=18)
        adversary = LowerBoundAdversary()
        result = run_execution(problem, FloodingAlgorithm(), adversary, seed=19)
        tracker = PotentialTracker(problem, adversary.kprime_sets)
        trajectory = tracker.replay(result.events, result.rounds)
        for stats, increase in zip(adversary.round_stats, trajectory.increases):
            assert increase <= 2 * max(0, stats.free_components - 1)
