"""Unit tests for σ-edge stability checking and enforcement (Section 1.3)."""

import pytest

from repro.dynamics.connectivity import is_connected
from repro.dynamics.generators import churn_schedule, star_oscillator_schedule
from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.dynamics.stability import (
    is_sigma_edge_stable,
    minimum_edge_stability,
    stabilize_schedule,
)
from repro.utils.validation import ConfigurationError


class TestMinimumEdgeStability:
    def test_every_graph_is_one_edge_stable(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(1, 2)], [(0, 2)]])
        assert minimum_edge_stability(schedule) >= 1

    def test_static_schedule_is_vacuously_stable(self):
        schedule = GraphSchedule([0, 1], [[(0, 1)], [(0, 1)], [(0, 1)]])
        # No edge ever disappears: stable for every sigma.
        assert minimum_edge_stability(schedule) >= 3
        assert is_sigma_edge_stable(schedule, 100)

    def test_detects_short_lived_edge(self):
        schedule = GraphSchedule(
            [0, 1, 2],
            [[(0, 1), (1, 2)], [(0, 1)], [(0, 1), (1, 2)], [(0, 1), (1, 2)]],
        )
        # (1, 2) appeared for a single round before disappearing.
        assert minimum_edge_stability(schedule) == 1

    def test_final_incomplete_run_is_ignored(self):
        schedule = GraphSchedule(
            [0, 1, 2],
            [[(0, 1), (1, 2)], [(0, 1), (1, 2)], [(0, 1), (0, 2)]],
        )
        # (0, 2) appears only in the last observed round but never disappears,
        # so it does not limit the stability; (1, 2) lasted 2 rounds.
        assert minimum_edge_stability(schedule) == 2

    def test_works_on_traces(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1), (1, 2)])
        trace.record_round([(0, 1)])
        assert minimum_edge_stability(trace) == 1

    def test_works_on_raw_edge_set_sequences(self):
        rounds = [{(0, 1)}, {(0, 1)}, {(1, 2)}]
        assert minimum_edge_stability(rounds) == 2

    def test_empty_sequence(self):
        assert minimum_edge_stability([]) == 1


class TestIsSigmaEdgeStable:
    def test_one_is_always_true(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(1, 2)]])
        assert is_sigma_edge_stable(schedule, 1)

    def test_three_edge_stable_detection(self):
        schedule = GraphSchedule(
            [0, 1, 2],
            [[(0, 1)], [(0, 1)], [(0, 1)], [(1, 2)], [(1, 2)], [(1, 2)]],
        )
        assert is_sigma_edge_stable(schedule, 3)
        assert not is_sigma_edge_stable(schedule, 4)

    def test_sigma_must_be_positive(self):
        schedule = GraphSchedule([0, 1], [[(0, 1)]])
        with pytest.raises(ConfigurationError):
            is_sigma_edge_stable(schedule, 0)


class TestStabilizeSchedule:
    def test_sigma_one_is_identity(self):
        schedule = churn_schedule(8, 6, seed=1)
        assert stabilize_schedule(schedule, 1) is schedule

    @pytest.mark.parametrize("sigma", [2, 3, 5])
    def test_result_is_sigma_stable(self, sigma):
        schedule = churn_schedule(10, 20, edge_probability=0.2, churn_fraction=0.5, seed=2)
        stabilized = stabilize_schedule(schedule, sigma)
        assert is_sigma_edge_stable(stabilized, sigma)

    def test_only_adds_edges(self):
        schedule = star_oscillator_schedule(8, 10, seed=3)
        stabilized = stabilize_schedule(schedule, 3)
        for round_index, edges in schedule.iter_rounds():
            assert edges <= stabilized.edges_for_round(round_index)

    def test_preserves_connectivity(self):
        schedule = churn_schedule(10, 15, seed=4)
        stabilized = stabilize_schedule(schedule, 3)
        for _, edges in stabilized.iter_rounds():
            assert is_connected(stabilized.nodes, edges)

    def test_preserves_round_count(self):
        schedule = churn_schedule(8, 9, seed=5)
        assert stabilize_schedule(schedule, 4).num_rounds == 9

    def test_rejects_non_positive_sigma(self):
        schedule = churn_schedule(6, 4, seed=6)
        with pytest.raises(ConfigurationError):
            stabilize_schedule(schedule, 0)
