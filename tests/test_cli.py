"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import ADVERSARIES, ALGORITHMS, build_parser, main
from repro.scenarios import ADVERSARY_REGISTRY, ALGORITHM_REGISTRY, ScenarioSpec


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "single-source"
        assert args.adversary == "churn"
        assert args.nodes == 20
        # -k defaults to None so that an explicit -k can be told apart from
        # the default (needed to reject contradictory n-gossip invocations).
        assert args.tokens is None

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "does-not-exist"])

    def test_registries_are_consistent_with_choices(self):
        assert "single-source" in ALGORITHMS
        assert "lower-bound" in ADVERSARIES
        for factory in list(ALGORITHMS.values()) + list(ADVERSARIES.values()):
            assert callable(factory)

    def test_legacy_dicts_mirror_the_registries(self):
        assert sorted(ALGORITHMS) == ALGORITHM_REGISTRY.names()
        assert sorted(ADVERSARIES) == ADVERSARY_REGISTRY.names()


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert output.startswith("repro ")
        version = output.split()[1]
        assert version.count(".") == 2

    def test_version_reads_package_metadata_with_source_fallback(self, capsys):
        import repro
        from repro.cli import _package_version

        # When the distribution is not installed (src-layout test runs), the
        # metadata lookup falls back to the source tree's __version__; an
        # installed wheel reports its distribution version instead.
        assert _package_version() == repro.__version__
        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out.strip() == f"repro {_package_version()}"


class TestRunCommand:
    def test_single_source_run(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "single-source", "--adversary", "churn",
             "-n", "10", "-k", "8", "--seed", "3"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "total messages" in output
        assert "topological changes TC(E)" in output

    def test_flooding_against_lower_bound(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "flooding", "--adversary", "lower-bound",
             "-n", "10", "-k", "6", "--random-placement", "--seed", "2"]
        )
        assert exit_code == 0
        assert "amortized messages / token" in capsys.readouterr().out

    def test_n_gossip_with_multi_source(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "multi-source", "--adversary", "random",
             "-n", "8", "-k", "8", "-s", "0", "--seed", "4"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sources (s)" in output

    def test_incomplete_run_returns_nonzero(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "single-source", "--adversary", "static",
             "-n", "10", "-k", "8", "--max-rounds", "1", "--seed", "5"]
        )
        assert exit_code == 1


class TestAnalyticCommands:
    def test_table1(self, capsys):
        assert main(["table1", "-n", "256"]) == 0
        output = capsys.readouterr().out
        assert "k = n^2" in output

    def test_bounds(self, capsys):
        assert main(["bounds", "-n", "100", "-k", "200", "-s", "4"]) == 0
        output = capsys.readouterr().out
        assert "single-source competitive" in output
        assert "multi-source competitive" in output


class TestExitCodeContract:
    """Pin the run exit codes: 0 on completion, 1 on a round-limit stop.

    The JSON output path must preserve the same codes as the table path.
    """

    COMPLETING = ["run", "--algorithm", "single-source", "--adversary", "churn",
                  "-n", "10", "-k", "8", "--seed", "3"]
    ROUND_LIMITED = ["run", "--algorithm", "single-source", "--adversary", "static",
                     "-n", "10", "-k", "8", "--max-rounds", "1", "--seed", "5"]

    def test_completion_is_zero(self, capsys):
        assert main(self.COMPLETING) == 0

    def test_round_limit_stop_is_one(self, capsys):
        assert main(self.ROUND_LIMITED) == 1

    def test_completion_is_zero_with_json(self, capsys):
        assert main(self.COMPLETING + ["--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["completed"] is True

    def test_round_limit_stop_is_one_with_json(self, capsys):
        assert main(self.ROUND_LIMITED + ["--json"]) == 1
        record = json.loads(capsys.readouterr().out)
        assert record["completed"] is False
        assert record["rounds"] == 1

    def test_configuration_error_is_two(self, capsys):
        assert main(["run", "--set", "adversary.not_a_param=1"]) == 2
        assert "not_a_param" in capsys.readouterr().err


class TestNGossipTokenConflict:
    def test_sources_zero_with_contradictory_k_is_rejected(self, capsys):
        exit_code = main(["run", "--sources", "0", "-k", "40", "-n", "20"])
        assert exit_code == 2
        assert "forces k = n" in capsys.readouterr().err

    def test_sources_zero_with_matching_k_is_accepted(self, capsys):
        args = ["run", "--algorithm", "multi-source", "-n", "8", "-k", "8", "-s", "0",
                "--seed", "4"]
        assert main(args) == 0

    def test_sources_zero_without_k_is_accepted(self, capsys):
        args = ["run", "--algorithm", "multi-source", "-n", "8", "-s", "0", "--seed", "4"]
        assert main(args) == 0


class TestListCommand:
    def test_list_enumerates_all_registries(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for section in ("algorithms:", "adversaries:", "problems:", "backends:"):
            assert section in output
        for name in ("single-source", "lower-bound", "n-gossip", "bitset"):
            assert name in output

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "algorithms", "adversaries", "problems", "backends",
            "bitset_fast_paths", "batch_programs",
        }
        assert payload["batch_programs"] == sorted(
            entry["name"] for entry in payload["algorithms"]
        )
        names = {entry["name"] for entry in payload["algorithms"]}
        assert "flooding" in names
        backend_names = {entry["name"] for entry in payload["backends"]}
        assert {"reference", "bitset"} <= backend_names
        oblivious = next(e for e in payload["algorithms"] if e["name"] == "oblivious")
        defaults = {p["name"]: p.get("default") for p in oblivious["parameters"]}
        assert defaults["force_two_phase"] is True

    def test_list_marks_bitset_fast_paths(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        fast_paths = set(payload["bitset_fast_paths"])
        assert {
            "flooding",
            "single-source",
            "spanning-tree",
            "multi-source",
            "oblivious",
        } <= fast_paths
        main(["list"])
        assert "[bitset fast path]" in capsys.readouterr().out


class TestBenchCommand:
    """Exit codes stay pinned: 0 pass, 1 gate/mismatch failure, 2 bad config."""

    @pytest.fixture
    def tiny_grid(self, monkeypatch):
        import repro.benchmark as benchmark

        def grid(quick):
            return [benchmark._flooding_spec(12)]

        monkeypatch.setattr(benchmark, "benchmark_grid", grid)

    def test_bench_runs_and_writes_trajectory(self, tiny_grid, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["backends"] == ["reference", "bitset"]
        assert all(entry["equal"] for entry in payload["entries"])
        assert "bench-flooding-n12-k12" in capsys.readouterr().out

    def test_unreachable_speedup_gate_fails_with_exit_1(self, tiny_grid, capsys):
        assert main(["bench", "--quick", "--min-speedup", "1000000"]) == 1
        assert "speedup gate" in capsys.readouterr().out

    def test_trivially_met_speedup_gate_passes(self, tiny_grid, capsys):
        assert main(["bench", "--quick", "--min-speedup", "0.0001"]) == 0
        assert "speedup gate" in capsys.readouterr().out

    def test_gate_without_a_flooding_entry_fails(self, monkeypatch, capsys):
        import repro.benchmark as benchmark

        monkeypatch.setattr(
            benchmark, "benchmark_grid", lambda quick: [benchmark._spanning_tree_spec(8, 6)]
        )
        assert main(["bench", "--quick", "--min-speedup", "1"]) == 1
        assert "no flooding entry" in capsys.readouterr().out

    def test_invalid_repeat_is_a_configuration_error(self, capsys):
        assert main(["bench", "--repeat", "0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_runs_grid_and_writes_jsonl(self, tmp_path, capsys):
        output = tmp_path / "records.jsonl"
        exit_code = main([
            "sweep", "--algorithm", "single-source", "--adversary", "churn",
            "-n", "8", "-k", "6", "--grid", "problem.num_nodes=8,10",
            "--repetitions", "2", "--seed", "9", "--output", str(output),
        ])
        assert exit_code == 0
        lines = output.read_text().strip().splitlines()
        assert len(lines) == 4  # 2 grid points x 2 repetitions
        records = [json.loads(line) for line in lines]
        assert {record["n"] for record in records} == {8, 10}
        assert all(record["completed"] for record in records)

    def test_sweep_json_output_matches_file(self, tmp_path, capsys):
        output = tmp_path / "records.jsonl"
        args = ["sweep", "-n", "8", "-k", "6", "--grid", "seed=1,2",
                "--output", str(output), "--json"]
        assert main(args) == 0
        stdout_lines = capsys.readouterr().out.strip().splitlines()
        assert stdout_lines == output.read_text().strip().splitlines()

    def test_sweep_with_set_overrides(self, capsys):
        exit_code = main([
            "sweep", "-n", "8", "-k", "6", "--grid", "seed=0,1",
            "--set", "adversary.changes_per_round=1",
        ])
        assert exit_code == 0

    def test_invalid_grid_is_rejected(self, capsys):
        assert main(["sweep", "--grid", "nonsense"]) == 2


class TestSpecFile:
    def test_run_from_spec_file(self, tmp_path, capsys):
        spec = ScenarioSpec(
            problem="single-source",
            problem_params={"num_nodes": 8, "num_tokens": 6},
            algorithm="single-source",
            adversary="churn",
            repetitions=2,
            seed=3,
            name="from-file",
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        assert main(["run", "--spec", str(path), "--json"]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert len(records) == 2
        assert all(record["scenario"] == "from-file" for record in records)


class TestReviewRegressions:
    def test_named_problem_picks_up_dimension_flags(self, capsys):
        args = ["run", "--problem", "multi-source", "--algorithm", "multi-source",
                "-n", "12", "-k", "8", "-s", "4", "--json"]
        assert main(args) == 0
        record = json.loads(capsys.readouterr().out)
        assert (record["n"], record["k"], record["s"]) == (12, 8, 4)

    def test_static_random_adversary_gets_num_nodes_from_the_problem(self, capsys):
        assert main(["run", "--adversary", "static-random", "-n", "10", "-k", "6",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["adversary_params"]["num_nodes"] == 10

    def test_missing_required_parameter_is_a_clean_error(self, capsys):
        # No -n mapping exists for sweep-less problems given only via --problem
        # with the dimension flags at defaults; a missing required parameter
        # must exit 2 with a message, not a traceback.
        assert main(["run", "--set", "adversary.num_nodes=5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_is_a_clean_error(self, capsys):
        assert main(["run", "--spec", "/no/such/file.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_spec_rejects_conflicting_scenario_flags(self, tmp_path, capsys):
        spec = ScenarioSpec(
            problem="single-source",
            problem_params={"num_nodes": 8, "num_tokens": 6},
            algorithm="single-source",
            adversary="churn",
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        assert main(["run", "--spec", str(path), "--seed", "99"]) == 2
        assert "--seed" in capsys.readouterr().err
        assert main(["run", "--spec", str(path)]) == 0


class TestThinAdapterExitCodes:
    """The api-backed adapters keep the 0 / 1 / 2 exit-code contract."""

    def test_sweep_completion_is_zero(self, capsys):
        assert main(["sweep", "-n", "8", "-k", "6", "--grid", "seed=0,1"]) == 0

    def test_sweep_round_limit_stop_is_one(self, capsys):
        assert main(["sweep", "--adversary", "static", "-n", "10", "-k", "8",
                     "--max-rounds", "1", "--grid", "seed=5,6"]) == 1

    def test_sweep_unknown_component_is_two_with_a_suggestion(self, capsys):
        # The typo passes argparse (it is a --grid value, not a choice) and
        # must surface the registry's did-you-mean error, not a traceback.
        assert main(["sweep", "-n", "8", "-k", "6",
                     "--grid", "algorithm=floodng"]) == 2
        message = capsys.readouterr().err
        assert "did you mean 'flooding'" in message

    def test_run_spec_with_unknown_backend_is_two(self, tmp_path, capsys):
        spec = ScenarioSpec(
            problem="single-source",
            problem_params={"num_nodes": 8, "num_tokens": 6},
            algorithm="single-source",
            adversary="churn",
            backend="bitst",
        )
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        assert main(["run", "--spec", str(path)]) == 2
        assert "did you mean 'bitset'" in capsys.readouterr().err

    def test_analyze_missing_source_is_two(self, capsys):
        assert main(["analyze", "/no/such/records.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_store_roundtrip_is_zero(self, tmp_path, capsys):
        store = tmp_path / "warehouse"
        assert main(["sweep", "-n", "8", "-k", "6", "--grid", "seed=0,1",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        assert "# Results report" in capsys.readouterr().out

    def test_incremental_sweep_skips_cached_cells(self, tmp_path, capsys):
        store = tmp_path / "warehouse"
        args = ["sweep", "-n", "8", "-k", "6", "--grid", "seed=0,1",
                "--repetitions", "2", "--store", str(store)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 added, 0 already present (4 executed)" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 added, 4 already present (0 executed)" in second
