"""Tests for the command-line interface."""

import pytest

from repro.cli import ADVERSARIES, ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "single-source"
        assert args.adversary == "churn"
        assert args.nodes == 20
        assert args.tokens == 40

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "does-not-exist"])

    def test_registries_are_consistent_with_choices(self):
        assert "single-source" in ALGORITHMS
        assert "lower-bound" in ADVERSARIES
        for factory in list(ALGORITHMS.values()) + list(ADVERSARIES.values()):
            assert callable(factory)


class TestRunCommand:
    def test_single_source_run(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "single-source", "--adversary", "churn",
             "-n", "10", "-k", "8", "--seed", "3"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "total messages" in output
        assert "topological changes TC(E)" in output

    def test_flooding_against_lower_bound(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "flooding", "--adversary", "lower-bound",
             "-n", "10", "-k", "6", "--random-placement", "--seed", "2"]
        )
        assert exit_code == 0
        assert "amortized messages / token" in capsys.readouterr().out

    def test_n_gossip_with_multi_source(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "multi-source", "--adversary", "random",
             "-n", "8", "-k", "8", "-s", "0", "--seed", "4"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sources (s)" in output

    def test_incomplete_run_returns_nonzero(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "single-source", "--adversary", "static",
             "-n", "10", "-k", "8", "--max-rounds", "1", "--seed", "5"]
        )
        assert exit_code == 1


class TestAnalyticCommands:
    def test_table1(self, capsys):
        assert main(["table1", "-n", "256"]) == 0
        output = capsys.readouterr().out
        assert "k = n^2" in output

    def test_bounds(self, capsys):
        assert main(["bounds", "-n", "100", "-k", "200", "-s", "4"]) == 0
        output = capsys.readouterr().out
        assert "single-source competitive" in output
        assert "multi-source competitive" in output
