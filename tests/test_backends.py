"""Tests for the pluggable execution backends and the differential harness."""

import json

import pytest

from repro.backends import (
    BACKEND_REGISTRY,
    BitsetBackend,
    EngineBackend,
    ReferenceBackend,
    get_backend,
    register_backend,
)
from repro.backends.bitset import fast_path_names
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.core.tokens import Token
from repro.backends.differential import (
    DifferentialReport,
    default_differential_specs,
    diff_results,
    validate_backends,
)
from repro.cli import main
from repro.core.engine import Simulator
from repro.core.problem import single_source_problem
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.adversaries.lower_bound import LowerBoundAdversary
from repro.adversaries.oblivious import ControlledChurnAdversary
from repro.scenarios import ScenarioSpec, repetition_seed, run_scenario, run_spec, sweep
from repro.utils.validation import ConfigurationError, SimulationError


def bitset_spec(**overrides):
    fields = dict(
        problem="single-source",
        problem_params={"num_nodes": 10, "num_tokens": 8},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        seed=5,
        backend="bitset",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestBackendRegistry:
    def test_builtin_backends_are_registered(self):
        assert "reference" in BACKEND_REGISTRY
        assert "bitset" in BACKEND_REGISTRY

    def test_get_backend_returns_engine_backends(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("bitset"), BitsetBackend)

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="bitset"):
            get_backend("no-such-backend")

    def test_non_engine_backend_registration_is_rejected_at_use(self):
        register_backend("bogus-backend", replace=True)(lambda: object())
        try:
            with pytest.raises(ConfigurationError, match="EngineBackend"):
                get_backend("bogus-backend")
        finally:
            BACKEND_REGISTRY._entries.pop("bogus-backend", None)

    def test_custom_backend_is_dispatchable_from_a_spec(self):
        calls = []

        @register_backend("recording-backend", replace=True)
        class RecordingBackend(EngineBackend):
            name = "recording-backend"

            def run(self, problem, algorithm, adversary, **kwargs):
                calls.append(problem.num_nodes)
                return ReferenceBackend().run(problem, algorithm, adversary, **kwargs)

        try:
            result = run_scenario(bitset_spec(backend="recording-backend"))
            assert result.completed
            assert calls == [10]
        finally:
            BACKEND_REGISTRY._entries.pop("recording-backend", None)


class TestBitsetCapabilities:
    """Capability discovery: native fast programs where algorithms provide
    them, the generic kernel path everywhere else — nothing is refused."""

    def test_every_scenario_is_supported(self):
        problem = single_source_problem(6, 4)
        backend = BitsetBackend()
        assert backend.supports(
            problem, OneShotFloodingAlgorithm(), ControlledChurnAdversary()
        ) is None
        assert backend.supports(
            problem, FloodingAlgorithm(), LowerBoundAdversary()
        ) is None
        assert backend.supports(
            problem, SingleSourceUnicastAlgorithm(), ControlledChurnAdversary()
        ) is None

    def test_native_fast_paths_are_discovered_from_the_registry(self):
        names = fast_path_names()
        for expected in (
            "flooding",
            "one-shot-flooding",
            "naive-unicast",
            "single-source",
            "spanning-tree",
            "multi-source",
            "oblivious",
        ):
            assert expected in names

    def test_execution_mode_reports_native_vs_generic(self):
        backend = BitsetBackend()
        assert backend.execution_mode(FloodingAlgorithm()) == "native"
        # The two-phase oblivious algorithm drives the real algorithm during
        # its rng-driven random-walk phase but switches to the multi-source
        # fast program in phase 2 — still a native program from the outside.
        assert backend.execution_mode(ObliviousMultiSourceAlgorithm()) == "native"

    def test_subclasses_fall_back_to_the_generic_path(self):
        class TweakedFlooding(FloodingAlgorithm):
            """Overrides could change behaviour the fast program hardcodes."""

        assert TweakedFlooding().fast_program_factory() is None
        assert BitsetBackend().execution_mode(TweakedFlooding()) == "generic"

    def test_configured_catalog_disables_the_multi_source_fast_program(self):
        algorithm = MultiSourceUnicastAlgorithm(
            source_catalog={0: [Token(source=0, index=1)]}
        )
        assert algorithm.fast_program_factory() is None

    def test_previously_unsupported_scenarios_now_run_and_match(self):
        for overrides in (
            dict(algorithm="one-shot-flooding"),
            dict(adversary="star-recenter", adversary_params={}),
        ):
            spec = bitset_spec(**overrides)
            report = validate_backends([spec])
            assert report.passed, [
                d.describe() for o in report.failures for d in o.differences
            ]


class TestBackendEquivalence:
    """Seeded differential grids: the bitset backend must match the reference
    bitwise on every observable result field."""

    def assert_equivalent(self, spec):
        report = validate_backends([spec])
        for outcome in report.outcomes:
            assert outcome.equal, (
                f"{spec.label} rep {outcome.repetition}: "
                f"{[d.describe() for d in outcome.differences]}"
            )

    @pytest.mark.parametrize("num_nodes", [6, 12])
    @pytest.mark.parametrize("num_tokens", [4, 10])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_flooding_under_churn(self, num_nodes, num_tokens, seed):
        self.assert_equivalent(
            bitset_spec(
                algorithm="flooding",
                problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
                seed=seed,
            )
        )

    @pytest.mark.parametrize("num_nodes", [8, 12])
    @pytest.mark.parametrize("num_tokens", [6, 14])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_single_source_under_churn(self, num_nodes, num_tokens, seed):
        self.assert_equivalent(
            bitset_spec(
                problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
                adversary_params={"changes_per_round": 3},
                seed=seed,
            )
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spanning_tree_on_static_graphs(self, seed):
        self.assert_equivalent(
            bitset_spec(
                algorithm="spanning-tree",
                adversary="static-random",
                adversary_params={"num_nodes": 10},
                seed=seed,
            )
        )

    def test_heavy_churn_star_oscillator(self):
        self.assert_equivalent(
            bitset_spec(
                adversary="star-oscillator",
                adversary_params={"num_nodes": 10},
                seed=3,
            )
        )

    def test_incomplete_round_capped_runs_agree(self):
        spec = bitset_spec(max_rounds=3)
        report = validate_backends([spec])
        assert report.passed
        result = run_scenario(spec)
        assert not result.completed and result.rounds == 3

    def test_flooding_on_n_gossip(self):
        self.assert_equivalent(
            bitset_spec(
                algorithm="flooding",
                problem="n-gossip",
                problem_params={"num_nodes": 9},
            )
        )

    def test_flooding_on_random_placement(self):
        self.assert_equivalent(
            bitset_spec(
                algorithm="flooding",
                problem="random-placement",
                problem_params={"num_nodes": 8, "num_tokens": 6},
                seed=7,
            )
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_adaptive_request_cutting_matches(self, seed):
        self.assert_equivalent(
            bitset_spec(
                adversary="request-cutting",
                adversary_params={"cut_fraction": 0.7},
                seed=seed,
            )
        )

    def test_adaptive_star_recenter_on_flooding_matches(self):
        self.assert_equivalent(
            bitset_spec(
                algorithm="flooding",
                adversary="star-recenter",
                adversary_params={},
                seed=2,
            )
        )

    def test_lower_bound_adversary_matches(self):
        self.assert_equivalent(
            bitset_spec(
                algorithm="flooding",
                adversary="lower-bound",
                adversary_params={},
                problem_params={"num_nodes": 8, "num_tokens": 5},
            )
        )

    def test_multi_source_fast_program_matches(self):
        self.assert_equivalent(
            bitset_spec(
                problem="multi-source",
                problem_params={"num_nodes": 10, "num_tokens": 9, "num_sources": 3},
                algorithm="multi-source",
                adversary_params={"changes_per_round": 2},
            )
        )

    def test_naive_unicast_fast_program_matches(self):
        self.assert_equivalent(
            bitset_spec(algorithm="naive-unicast", seed=4)
        )

    def test_generic_kernel_path_matches_for_oblivious_algorithm(self):
        self.assert_equivalent(
            bitset_spec(
                problem="multi-source",
                problem_params={"num_nodes": 12, "num_tokens": 12, "num_sources": 6},
                algorithm="oblivious",
                adversary_params={"changes_per_round": 1},
            )
        )

    def test_default_grid_passes(self):
        report = validate_backends(default_differential_specs())
        assert isinstance(report, DifferentialReport)
        assert report.passed
        assert len(report.outcomes) >= 50
        covered = {spec.algorithm for spec in default_differential_specs()}
        from repro.scenarios import ALGORITHM_REGISTRY

        assert covered == set(ALGORITHM_REGISTRY.names())
        adversaries = {spec.adversary for spec in default_differential_specs()}
        # Both adversary classes are exercised.
        assert {"request-cutting", "star-recenter", "adaptive-rewiring", "lower-bound"} <= adversaries

    def test_spec_records_are_identical_across_backends(self):
        spec = bitset_spec(repetitions=2)
        fast = run_spec(spec)
        slow = run_spec(ScenarioSpec.from_dict({**spec.to_dict(), "backend": "reference"}))
        for fast_record, slow_record in zip(fast, slow):
            fast_record = dict(fast_record)
            slow_record = dict(slow_record)
            assert fast_record.pop("spec")["backend"] == "bitset"
            assert slow_record.pop("spec")["backend"] == "reference"
            assert fast_record == slow_record


class TestDiffResults:
    def test_disagreement_is_reported_field_by_field(self):
        spec = bitset_spec()
        seed = repetition_seed(spec, 0)
        base = run_scenario(spec)
        other = run_scenario(bitset_spec(seed=spec.seed + 1))
        differences = diff_results(base, other)
        assert differences
        fields = {difference.field.split("[")[0] for difference in differences}
        assert fields & {"rounds", "total_messages", "events", "per_round_messages"}
        assert all(difference.describe()["field"] for difference in differences)
        assert seed == repetition_seed(spec, 0)

    def test_equal_results_produce_no_differences(self):
        spec = bitset_spec()
        assert diff_results(run_scenario(spec), run_scenario(spec)) == []


class TestSpecBackendField:
    def test_backend_round_trips_through_json(self):
        spec = bitset_spec()
        assert ScenarioSpec.from_json(spec.to_json()).backend == "bitset"

    def test_backend_defaults_to_reference_for_legacy_payloads(self):
        payload = bitset_spec().to_dict()
        del payload["backend"]
        assert ScenarioSpec.from_dict(payload).backend == "reference"

    def test_backend_is_an_execution_detail_not_content(self):
        fast = bitset_spec()
        slow = bitset_spec(backend="reference")
        assert fast.scenario_key() == slow.scenario_key()
        assert repetition_seed(fast, 0) == repetition_seed(slow, 0)

    def test_backend_is_sweepable(self):
        specs = sweep(bitset_spec(), {"backend": ["reference", "bitset"]})
        assert [spec.backend for spec in specs] == ["reference", "bitset"]

    def test_invalid_backend_value_is_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            bitset_spec(backend="")


class TestKeepTrace:
    """Simulator(keep_trace=False) sheds history but not results."""

    def make_results(self):
        problem = single_source_problem(10, 8)
        results = []
        for keep_trace in (True, False):
            simulator = Simulator(
                problem,
                SingleSourceUnicastAlgorithm(),
                ControlledChurnAdversary(changes_per_round=2),
                seed=3,
                keep_trace=keep_trace,
            )
            results.append(simulator.run())
        return results

    def test_results_match_with_and_without_trace(self):
        kept, dropped = self.make_results()
        assert diff_results(kept, dropped, compare_graphs=False) == []
        assert kept.topological_changes == dropped.topological_changes
        assert kept.trace.total_edge_removals() == dropped.trace.total_edge_removals()

    def test_dropped_history_rejects_past_round_queries(self):
        _, dropped = self.make_results()
        assert not dropped.trace.keeps_history
        assert dropped.trace.num_rounds == dropped.rounds
        # The current round stays queryable; earlier rounds do not.
        assert dropped.trace.edges_in_round(dropped.rounds)
        with pytest.raises(SimulationError, match="dropped"):
            dropped.trace.edges_in_round(1)
        with pytest.raises(SimulationError, match="history"):
            dropped.trace.as_schedule()

    def test_zero_round_prefixes_need_no_history(self):
        _, dropped = self.make_results()
        assert dropped.trace.topological_changes(0) == 0
        assert dropped.trace.total_edge_removals(0) == 0

    def test_bitset_trace_freezes_into_a_schedule(self):
        result = run_scenario(bitset_spec())
        schedule = result.trace.as_schedule()
        assert schedule.num_rounds == result.rounds
        assert schedule.edges_for_round(1) == result.trace.edges_in_round(1)

    def test_bitset_backend_honours_keep_trace(self):
        spec = bitset_spec()
        with_trace = run_scenario(spec)
        without_trace = run_scenario(spec, keep_trace=False)
        assert diff_results(with_trace, without_trace, compare_graphs=False) == []
        assert not without_trace.trace.keeps_history


class TestVerifyBackendCli:
    def test_single_spec_verification_passes(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(bitset_spec(repetitions=2).to_json())
        assert main(["verify-backend", "--spec", str(path)]) == 0
        output = capsys.readouterr().out
        assert "PASS" in output
        assert "2 execution(s)" in output

    def test_json_report_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(bitset_spec().to_json())
        assert main(["verify-backend", "--spec", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["candidate"] == "bitset"
        assert payload["executions"] == 1

    def test_unknown_algorithm_spec_is_a_configuration_error(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        payload = bitset_spec().to_dict()
        payload["algorithm"] = "no-such-algorithm"
        path.write_text(json.dumps(payload))
        assert main(["verify-backend", "--spec", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_command_accepts_backend_flag(self, capsys):
        assert main(
            ["run", "--algorithm", "flooding", "--adversary", "churn",
             "-n", "8", "-k", "6", "--backend", "bitset", "--json"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["backend"] == "bitset"
        assert record["completed"] is True

    def test_sweep_can_compare_backends_in_the_grid(self, capsys):
        assert main(
            ["sweep", "--algorithm", "flooding", "--adversary", "churn",
             "-n", "8", "-k", "4", "--grid", "backend=reference,bitset", "--json"]
        ) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert [record["spec"]["backend"] for record in records] == [
            "reference", "bitset",
        ]
        stripped = [
            {key: value for key, value in record.items() if key != "spec"}
            for record in records
        ]
        assert stripped[0] == stripped[1]

    def test_import_flag_loads_third_party_backends(self, tmp_path, capsys, monkeypatch):
        module_dir = tmp_path / "plugins"
        module_dir.mkdir()
        (module_dir / "my_backend_plugin.py").write_text(
            "from repro.backends import ReferenceBackend, register_backend\n"
            "@register_backend('plugin-backend', replace=True)\n"
            "class PluginBackend(ReferenceBackend):\n"
            "    name = 'plugin-backend'\n"
        )
        monkeypatch.syspath_prepend(str(module_dir))
        path = tmp_path / "spec.json"
        path.write_text(bitset_spec().to_json())
        try:
            assert main(
                ["verify-backend", "--import", "my_backend_plugin",
                 "--backend", "plugin-backend", "--spec", str(path)]
            ) == 0
            assert "PASS" in capsys.readouterr().out
        finally:
            BACKEND_REGISTRY._entries.pop("plugin-backend", None)

    def test_unknown_backend_name_is_a_clean_error(self, capsys):
        assert main(["verify-backend", "--backend", "no-such-backend"]) == 2
        assert "no-such-backend" in capsys.readouterr().err

    def test_unimportable_module_is_a_clean_error(self, capsys):
        assert main(["verify-backend", "--import", "no.such.module"]) == 2
        assert "no.such.module" in capsys.readouterr().err

    def test_spec_file_with_backend_flag_is_rejected(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(bitset_spec().to_json())
        assert main(["run", "--spec", str(path), "--backend", "bitset"]) == 2
        assert "--backend" in capsys.readouterr().err
