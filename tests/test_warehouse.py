"""repro.warehouse: the sqlite index over the JSONL run store.

The load-bearing invariant throughout is PR 2's: **aggregation output with
the index is byte-identical to the shard-scan path** — fresh builds,
incremental folds after appends, and cache invalidation after
``add(replace=True)`` all have to land on exactly the same rendered
tables.  The JSONL shards stay the source of truth: corrupting the sqlite
file must never lose data, only trigger a rebuild.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.api import Experiment
from repro.cli import main
from repro.results.aggregate import aggregate, aggregate_columns
from repro.results.records import RunRecord
from repro.results.report import rows_to_table
from repro.results.store import RunStore
from repro.scenarios import ScenarioSpec, run_spec
from repro.utils.validation import ConfigurationError
from repro.warehouse import (
    INDEX_FILENAME,
    WarehouseIndex,
    open_index,
    rebuild_index,
)


def sweep_specs(num_nodes=(6, 8), repetitions=3, **overrides):
    specs = []
    for n in num_nodes:
        fields = dict(
            problem="single-source",
            problem_params={"num_nodes": n, "num_tokens": 4},
            algorithm="flooding",
            algorithm_params={"rounds_per_token": 2},
            adversary="static-random",
            adversary_params={"num_nodes": n},
            seed=11,
            repetitions=repetitions,
            name="warehouse-test",
        )
        fields.update(overrides)
        specs.append(ScenarioSpec(**fields))
    return specs


def populated_store(tmp_path, specs=None, name="store"):
    store = RunStore(tmp_path / name)
    for spec in specs or sweep_specs():
        store.add(run_spec(spec))
    store.flush()
    return store


class TestSync:
    def test_fresh_sync_indexes_every_record(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        stats = index.sync()
        assert stats.shards_read == 2
        assert stats.rows_added == len(store.records())
        assert index.count() == len(store.records())

    def test_noop_sync_reads_zero_shards(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        stats = index.sync()
        assert stats.shards_read == 0
        assert stats.shards_skipped == 2
        assert stats.rows_added == 0

    def test_sync_folds_only_changed_shards(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a, spec_b])
        index = WarehouseIndex(store.path)
        index.sync()
        [grown] = sweep_specs(num_nodes=(8,), repetitions=5)
        store.add(run_spec(grown), replace=True)
        store.flush()
        stats = index.sync()
        assert stats.shards_read == 1
        assert stats.shards_skipped == 1
        assert stats.rows_added == 2  # repetitions 3 and 4 are new
        assert index.count() == len(store.records())

    def test_replace_bumps_mutation_appends_do_not(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        before = index.mutation()
        # A pure append: new repetition, no existing row superseded.
        record = store.records()[0].to_dict()
        record["repetition"] = 50
        store.add([record], replace=True)
        store.flush()
        index.sync()
        assert index.mutation() == before
        # A supersede: same repetition, different content.
        changed = dict(record, rounds=record["rounds"] + 7)
        store.add([changed], replace=True)
        store.flush()
        index.sync()
        assert index.mutation() == before + 1

    def test_sync_on_missing_store_refuses(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WarehouseIndex(tmp_path / "nowhere")


class TestRebuildAndCorruption:
    def test_rebuild_recovers_from_corruption(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        index.close()
        (store.path / INDEX_FILENAME).write_bytes(b"this is not a database")
        with pytest.raises(ConfigurationError, match="warehouse rebuild"):
            WarehouseIndex(store.path)
        rebuilt, stats = rebuild_index(store.path)
        assert rebuilt.count() == len(store.records())
        assert stats.shards_read == 2

    def test_open_index_falls_back_on_corruption(self, tmp_path):
        store = populated_store(tmp_path)
        WarehouseIndex(store.path).sync()
        (store.path / INDEX_FILENAME).write_bytes(b"garbage")
        assert open_index(store.path) is None

    def test_open_index_without_index_file(self, tmp_path):
        store = populated_store(tmp_path)
        assert open_index(store.path) is None

    def test_rebuild_matches_incremental_state(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        incremental_rows = index.query().aggregate()
        rebuilt, _ = rebuild_index(store.path)
        assert rebuilt.query().aggregate() == incremental_rows


class TestQueryParity:
    """Every warehouse read must agree with the store's shard-scan read."""

    def test_records_and_keys(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        assert query.scenario_keys() == store.scenario_keys()
        assert [r.to_json_line() for r in query.records()] == [
            r.to_json_line() for r in store.query()
        ]
        for key in store.scenario_keys():
            assert [r.to_json_line() for r in query.records_for_key(key)] == [
                r.to_json_line() for r in store.records_for_key(key)
            ]
            theirs = store.repetitions_present(key)
            ours = query.repetitions_present(key)
            assert {k: v.to_json_line() for k, v in ours.items()} == {
                k: v.to_json_line() for k, v in theirs.items()
            }

    def test_filters(self, tmp_path):
        mixed = sweep_specs() + sweep_specs(
            num_nodes=(6,), algorithm="naive-unicast", algorithm_params={}
        )
        store = populated_store(tmp_path, mixed)
        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        for filters in (
            {"algorithm": "flooding"},
            {"algorithm": "naive-unicast"},
            {"adversary": "static-random"},
            {"algorithm": "flooding", "problem": "single-source"},
        ):
            assert [r.to_json_line() for r in query.records(**filters)] == [
                r.to_json_line() for r in store.query(**filters)
            ]
            assert query.count(**filters) == len(store.query(**filters))
        where = {"problem.num_nodes": 6}
        assert [r.to_json_line() for r in query.records(where=where)] == [
            r.to_json_line() for r in store.query(where=where)
        ]

    def test_percentile(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        values = sorted(r.metric_value("rounds") for r in store.query())
        assert query.percentile("rounds", 0) == values[0]
        assert query.percentile("rounds", 100) == values[-1]
        mid = query.percentile("rounds", 50)
        assert values[0] <= mid <= values[-1]
        with pytest.raises(ConfigurationError):
            query.percentile("rounds", 101)
        with pytest.raises(ConfigurationError):
            query.percentile("no-such-metric", 50)


class TestByteIdenticalAggregation:
    """The PR-2 invariant: index and shard scan render identical tables."""

    @pytest.mark.parametrize("fmt", ["md", "csv", "json", "text"])
    def test_fresh_index_matches_shard_scan(self, tmp_path, fmt):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        plain = aggregate(store.query())
        cached = index.query().aggregate()
        assert cached == plain
        columns = aggregate_columns()
        assert rows_to_table(cached, columns, fmt) == rows_to_table(
            plain, columns, fmt
        )

    def test_incremental_fold_matches_after_appends(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a])
        index = WarehouseIndex(store.path)
        index.sync()
        index.query().aggregate()  # prime the group cache
        store.add(run_spec(spec_b))
        store.flush()
        index.sync()
        # The cache folds only the new rows (watermark advanced, no rebuild).
        assert index.query().aggregate() == aggregate(store.query())

    def test_cache_invalidates_after_replace(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        index.query().aggregate()
        record = store.records()[0].to_dict()
        record["rounds"] += 13
        store.add([record], replace=True)
        store.flush()
        index.sync()
        assert index.query().aggregate() == aggregate(store.query())

    def test_custom_axes_and_metrics(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        group_by = ["algorithm", "problem.num_nodes"]
        metrics = ["rounds", "token_learnings"]
        assert index.query().aggregate(group_by, metrics) == aggregate(
            store.query(), group_by, metrics
        )

    def test_metric_subset_after_superset_does_not_go_stale(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a])
        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        query.aggregate()  # cache the default (superset) metrics
        query.aggregate(metrics=["rounds"])  # subset request, same cache
        store.add(run_spec(spec_b))
        store.flush()
        index.sync()
        query.aggregate(metrics=["rounds"])  # folds ALL cached metrics
        assert query.aggregate() == aggregate(store.query())

    def test_second_call_reuses_cache_without_refolding(self, tmp_path):
        store = populated_store(tmp_path)
        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        first = query.aggregate()
        watermark = index.connection.execute(
            "SELECT row_watermark FROM group_cache_meta"
        ).fetchone()[0]
        assert watermark == index.max_rowid()
        assert query.aggregate() == first


class TestObservability:
    def test_sync_records_counters_and_timings(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        store = populated_store(tmp_path)
        registry = MetricsRegistry()
        index = WarehouseIndex(store.path, metrics=registry)
        index.sync()
        index.sync()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["warehouse.sync.calls"] == 2
        assert snapshot["counters"]["warehouse.sync.shards_read"] == 2
        assert snapshot["counters"]["warehouse.sync.shards_skipped"] == 2
        assert snapshot["counters"]["warehouse.sync.rows_added"] == len(
            store.records()
        )
        assert snapshot["histograms"]["warehouse.sync.seconds"]["count"] == 2


class TestSpeedupAtScale:
    def test_indexed_aggregate_is_10x_faster_on_50k_records(self, tmp_path):
        """The acceptance bar: on a >= 50k-record store the warm indexed
        path must beat the shard scan by >= 10x (measured ~1000x: the scan
        re-parses and re-bootstraps everything, the warm index serves the
        rendered rows straight from the group cache)."""
        import time

        [spec] = sweep_specs(num_nodes=(6,), repetitions=1)
        template = run_spec(spec)[0]
        store = RunStore(tmp_path / "big")
        scenarios, repetitions = 100, 500
        for scenario in range(scenarios):
            batch = []
            for repetition in range(repetitions):
                record = dict(template)
                record["spec"] = dict(template["spec"], seed=scenario)
                record["repetition"] = repetition
                record["seed"] = scenario * 100000 + repetition
                record["rounds"] = 10 + (repetition % 37)
                batch.append(record)
            store.add(batch, save_manifest=False)
        store.flush()
        assert len(store.records()) == scenarios * repetitions

        group_by = ["algorithm", "adversary", "n", "k"]
        metrics = ["rounds"]
        started = time.perf_counter()
        plain = aggregate(store.query(), group_by, metrics)
        scan_seconds = time.perf_counter() - started

        index = WarehouseIndex(store.path)
        index.sync()
        query = index.query()
        query.aggregate(group_by, metrics)  # prime the group cache
        started = time.perf_counter()
        index.sync()
        warm = query.aggregate(group_by, metrics)
        warm_seconds = time.perf_counter() - started

        assert warm == plain
        assert scan_seconds >= 10 * warm_seconds, (
            f"indexed path only {scan_seconds / warm_seconds:.1f}x faster "
            f"({scan_seconds:.2f}s scan vs {warm_seconds:.3f}s indexed)"
        )


class TestStoreListener:
    def test_attached_index_stays_warm(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a])
        index = WarehouseIndex(store.path)
        index.sync()
        index.attach(store)
        store.add(run_spec(spec_b))
        store.flush()
        # The listener already folded the append: nothing left to re-read.
        stats = index.sync()
        assert stats.shards_read == 0
        assert index.count() == len(store.records())
        assert index.query().aggregate() == aggregate(store.query())

    def test_stale_index_reconciles_on_next_sync(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a])
        index = WarehouseIndex(store.path)
        # Attach WITHOUT syncing first: the index misses spec_a's shard
        # content, so the append fast path must refuse the watermark and
        # leave the shard marked for re-reading.
        index.attach(store)
        store.add(run_spec(spec_b))
        store.flush()
        index.sync()
        assert index.count() == len(store.records())
        assert index.query().aggregate() == aggregate(store.query())

    def test_detach_stops_mirroring(self, tmp_path):
        spec_a, spec_b = sweep_specs()
        store = populated_store(tmp_path, [spec_a])
        index = WarehouseIndex(store.path)
        index.sync()
        index.attach(store)
        index.detach()
        store.add(run_spec(spec_b))
        store.flush()
        assert index.count() == 3
        index.sync()
        assert index.count() == len(store.records())


class TestPlanFastPath:
    def test_plan_with_index_matches_shard_scan_plan(self, tmp_path):
        specs = sweep_specs()
        store = populated_store(tmp_path, specs)
        WarehouseIndex(store.path).sync()
        indexed = Experiment.from_specs(specs).store(store.path).plan()
        other = populated_store(tmp_path, specs, name="noindex")
        plain = Experiment.from_specs(specs).store(other.path).plan()
        assert len(indexed.pending) == 0
        assert [c.cached_record for c in indexed.cells] == [
            c.cached_record for c in plain.cells
        ]

    def test_plan_keeps_index_warm_through_run(self, tmp_path):
        specs = sweep_specs(num_nodes=(6,))
        store = RunStore(tmp_path / "store")
        WarehouseIndex(store.path).sync()
        runset = Experiment.from_specs(specs).store(store.path).run()
        assert len(runset.records()) == 3
        index = open_index(store.path)
        # Records executed by the run were mirrored by the attached index.
        stats = index.sync()
        assert stats.shards_read == 0
        assert index.count() == 3


class TestCli:
    def run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_sync_query_byte_identical_to_analyze(self, tmp_path, capsys):
        store = populated_store(tmp_path)
        path = str(store.path)
        code, out, _ = self.run(capsys, "warehouse", "sync", path)
        assert code == 0
        assert "2 shard(s) read" in out
        code, indexed_out, err = self.run(capsys, "warehouse", "query", path)
        assert code == 0
        assert "skipped via watermarks" in err  # diagnostics stay off stdout
        other = populated_store(tmp_path, name="noindex")
        code, plain_out, _ = self.run(capsys, "analyze", str(other.path))
        assert code == 0
        assert indexed_out == plain_out

    def test_analyze_routes_through_index(self, tmp_path, capsys):
        store = populated_store(tmp_path)
        path = str(store.path)
        code, plain_out, err = self.run(capsys, "analyze", path)
        assert code == 0
        assert "warehouse" not in err  # no index yet: plain shard scan
        self.run(capsys, "warehouse", "sync", path)
        code, routed_out, err = self.run(capsys, "analyze", path)
        assert code == 0
        assert "skipped via watermarks" in err
        assert routed_out == plain_out

    def test_report_routes_through_index(self, tmp_path, capsys):
        store = populated_store(tmp_path)
        path = str(store.path)
        code, plain_out, _ = self.run(capsys, "report", path)
        self.run(capsys, "warehouse", "sync", path)
        code, routed_out, err = self.run(capsys, "report", path)
        assert code == 0
        assert "skipped via watermarks" in err
        assert routed_out == plain_out

    def test_query_count_and_percentile(self, tmp_path, capsys):
        store = populated_store(tmp_path)
        path = str(store.path)
        self.run(capsys, "warehouse", "sync", path)
        code, out, _ = self.run(capsys, "warehouse", "query", path, "--count")
        assert code == 0
        assert out.strip() == str(len(store.records()))
        code, out, _ = self.run(
            capsys, "warehouse", "query", path, "--percentile", "rounds:50"
        )
        assert code == 0
        float(out.strip())  # a bare number
        code, _, err = self.run(
            capsys, "warehouse", "query", path, "--percentile", "rounds"
        )
        assert code == 2
        assert "METRIC:Q" in err

    def test_rebuild_recovers_corrupt_index(self, tmp_path, capsys):
        store = populated_store(tmp_path)
        path = str(store.path)
        self.run(capsys, "warehouse", "sync", path)
        (store.path / INDEX_FILENAME).write_bytes(b"garbage")
        code, _, err = self.run(capsys, "warehouse", "query", path)
        assert code == 2
        assert "rebuild" in err
        code, out, _ = self.run(capsys, "warehouse", "rebuild", path)
        assert code == 0
        assert "rebuilt" in out
        code, out, _ = self.run(capsys, "warehouse", "query", path, "--count")
        assert code == 0
        assert out.strip() == str(len(store.records()))

    def test_consolidated_report(self, tmp_path, capsys):
        mixed = sweep_specs(num_nodes=(6,)) + sweep_specs(
            num_nodes=(6,), algorithm="naive-unicast", algorithm_params={}
        )
        store = populated_store(tmp_path, mixed)
        path = str(store.path)
        self.run(capsys, "warehouse", "sync", path)
        code, out, _ = self.run(capsys, "warehouse", "report", path)
        assert code == 0
        assert "## Overview" in out
        assert "## flooding × static-random" in out
        assert "## naive-unicast × static-random" in out
        code, out, _ = self.run(
            capsys, "warehouse", "report", path, "--format", "csv"
        )
        assert code == 0
        assert out.splitlines()[0].startswith("algorithm,adversary,")

    def test_empty_store_errors_like_shard_scan(self, tmp_path, capsys):
        store = RunStore(tmp_path / "empty")
        store.flush()
        path = str(store.path)
        self.run(capsys, "warehouse", "sync", path)
        code, _, err = self.run(capsys, "warehouse", "query", path)
        assert code == 2
        assert "holds no records" in err


class TestSchedulerIndex:
    def test_scheduler_creates_and_warms_the_index(self, tmp_path):
        import asyncio

        from repro.api import execute_cell_payload, execute_group_payload
        from repro.service.scheduler import Scheduler

        store_path = str(tmp_path / "service-store")

        class InlinePool:
            async def run(self, payload):
                return execute_cell_payload(payload)

            async def run_group(self, payload):
                return execute_group_payload(payload)

            def shutdown(self, wait: bool = True) -> None:
                pass

        async def run():
            scheduler = Scheduler(store_path, InlinePool())
            assert scheduler.warehouse is not None
            scheduler.submit(sweep_specs(num_nodes=(6,)))
            await scheduler.drain()
            return scheduler

        asyncio.run(run())
        index = open_index(store_path)
        assert index is not None
        # Cells persisted through the attached listener: nothing to re-read.
        stats = index.sync()
        assert stats.shards_read == 0
        assert index.count() == 3
        assert index.query().aggregate() == aggregate(
            RunStore(store_path).query()
        )
