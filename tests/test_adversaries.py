"""Unit tests for oblivious and adaptive adversaries."""

import random

import pytest

from repro.adversaries import (
    AdaptiveRewiringAdversary,
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    RequestCuttingAdversary,
    ScheduleAdversary,
    StarRecenterAdversary,
    StaticAdversary,
)
from repro.core.messages import RequestMessage, TokenMessage
from repro.core.observation import RoundObservation, SentRecord
from repro.core.problem import single_source_problem
from repro.core.tokens import Token
from repro.dynamics.connectivity import is_connected
from repro.dynamics.generators import static_path_schedule
from repro.dynamics.graph_sequence import GraphSchedule
from repro.utils.validation import ConfigurationError
from tests.conftest import path_edges


def make_observation(problem, round_index=2, previous_messages=(), broadcasts=None):
    knowledge = {node: problem.initial_knowledge[node] for node in problem.nodes}
    return RoundObservation(
        round_index=round_index,
        knowledge=knowledge,
        broadcast_payloads=broadcasts or {},
        previous_messages=tuple(previous_messages),
    )


class TestScheduleAdversary:
    def test_replays_schedule(self):
        problem = single_source_problem(4, 1)
        schedule = GraphSchedule([0, 1, 2, 3], [path_edges(4), [(0, 1), (1, 2), (2, 3), (0, 3)]])
        adversary = ScheduleAdversary(schedule)
        adversary.reset(problem, random.Random(0))
        assert adversary.edges_for_round(1, None) == frozenset(path_edges(4))
        assert len(adversary.edges_for_round(2, None)) == 4

    def test_last_round_repeats(self):
        problem = single_source_problem(4, 1)
        adversary = ScheduleAdversary(static_path_schedule(4))
        adversary.reset(problem, random.Random(0))
        assert adversary.edges_for_round(99, None) == frozenset(path_edges(4))

    def test_rejects_mismatched_node_set(self):
        problem = single_source_problem(5, 1)
        adversary = ScheduleAdversary(static_path_schedule(4))
        with pytest.raises(ConfigurationError):
            adversary.reset(problem, random.Random(0))

    def test_is_oblivious(self):
        assert ScheduleAdversary(static_path_schedule(4)).oblivious


class TestStaticAdversary:
    def test_rejects_disconnected_edges(self):
        with pytest.raises(ConfigurationError):
            StaticAdversary(4, [(0, 1)])

    def test_keeps_edges_forever(self):
        problem = single_source_problem(4, 1)
        adversary = StaticAdversary(4, path_edges(4))
        adversary.reset(problem, random.Random(0))
        for round_index in (1, 5, 50):
            assert adversary.edges_for_round(round_index, None) == frozenset(path_edges(4))


class TestRandomChurnObliviousAdversary:
    def test_always_connected(self):
        problem = single_source_problem(10, 1)
        adversary = RandomChurnObliviousAdversary(edge_probability=0.1)
        adversary.reset(problem, random.Random(1))
        for round_index in range(1, 15):
            edges = adversary.edges_for_round(round_index, None)
            assert is_connected(problem.nodes, edges)

    def test_period_keeps_graph_stable_between_refreshes(self):
        problem = single_source_problem(10, 1)
        adversary = RandomChurnObliviousAdversary(edge_probability=0.2, period=3)
        adversary.reset(problem, random.Random(2))
        first = adversary.edges_for_round(1, None)
        second = adversary.edges_for_round(2, None)
        third = adversary.edges_for_round(3, None)
        assert first == second == third
        fourth = adversary.edges_for_round(4, None)
        assert isinstance(fourth, (set, frozenset))

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            RandomChurnObliviousAdversary(period=0)


class TestControlledChurnAdversary:
    def test_zero_budget_means_static_after_first_round(self):
        problem = single_source_problem(8, 1)
        adversary = ControlledChurnAdversary(changes_per_round=0)
        adversary.reset(problem, random.Random(3))
        first = adversary.edges_for_round(1, None)
        assert adversary.edges_for_round(2, None) == first
        assert adversary.edges_for_round(3, None) == first

    def test_budget_changes_edges_each_round(self):
        problem = single_source_problem(10, 1)
        adversary = ControlledChurnAdversary(changes_per_round=4, edge_probability=0.3)
        adversary.reset(problem, random.Random(4))
        first = adversary.edges_for_round(1, None)
        second = adversary.edges_for_round(2, None)
        assert first != second

    def test_always_connected(self):
        problem = single_source_problem(10, 1)
        adversary = ControlledChurnAdversary(changes_per_round=6, edge_probability=0.2)
        adversary.reset(problem, random.Random(5))
        for round_index in range(1, 12):
            assert is_connected(problem.nodes, adversary.edges_for_round(round_index, None))

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            ControlledChurnAdversary(changes_per_round=-1)

    def test_exposes_budget(self):
        assert ControlledChurnAdversary(changes_per_round=5).changes_per_round == 5


class TestRequestCuttingAdversary:
    def test_cuts_edges_that_carried_requests(self):
        problem = single_source_problem(8, 2)
        adversary = RequestCuttingAdversary(edge_probability=0.4, cut_fraction=1.0)
        adversary.reset(problem, random.Random(6))
        first = set(adversary.edges_for_round(1, make_observation(problem, 1)))
        # Pretend a request was sent over every edge of the first graph.
        records = [
            SentRecord(sender=u, receiver=v, payload=RequestMessage(0, 1)) for u, v in first
        ]
        second = set(
            adversary.edges_for_round(
                2, make_observation(problem, 2, previous_messages=records)
            )
        )
        # Every request-carrying edge that could be removed without breaking
        # connectivity should be gone, so the graphs differ substantially.
        assert first != second
        assert is_connected(problem.nodes, second)

    def test_non_request_messages_do_not_trigger_cuts(self):
        problem = single_source_problem(8, 2)
        adversary = RequestCuttingAdversary(edge_probability=0.4, cut_fraction=1.0)
        adversary.reset(problem, random.Random(7))
        first = set(adversary.edges_for_round(1, make_observation(problem, 1)))
        records = [
            SentRecord(sender=u, receiver=v, payload=TokenMessage(Token(0, 1)))
            for u, v in first
        ]
        second = set(
            adversary.edges_for_round(
                2, make_observation(problem, 2, previous_messages=records)
            )
        )
        assert first == second

    def test_is_adaptive(self):
        assert not RequestCuttingAdversary().oblivious


class TestStarRecenterAdversary:
    def test_produces_stars(self):
        problem = single_source_problem(7, 2)
        adversary = StarRecenterAdversary()
        adversary.reset(problem, random.Random(8))
        edges = set(adversary.edges_for_round(1, make_observation(problem, 1)))
        assert len(edges) == 6
        assert is_connected(problem.nodes, edges)

    def test_center_is_least_informed_node(self):
        problem = single_source_problem(7, 2)
        adversary = StarRecenterAdversary()
        adversary.reset(problem, random.Random(9))
        edges = set(adversary.edges_for_round(1, make_observation(problem, 1)))
        # Node 0 is the source (most informed); the center must not be node 0
        # because every other node knows nothing and has a smaller knowledge set.
        degree = {node: 0 for node in problem.nodes}
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        center = max(degree, key=degree.get)
        assert center != 0

    def test_center_changes_between_rounds(self):
        problem = single_source_problem(7, 2)
        adversary = StarRecenterAdversary()
        adversary.reset(problem, random.Random(10))
        first = set(adversary.edges_for_round(1, make_observation(problem, 1)))
        second = set(adversary.edges_for_round(2, make_observation(problem, 2)))
        assert first != second


class TestAdaptiveRewiringAdversary:
    def test_always_connected(self):
        problem = single_source_problem(10, 3)
        adversary = AdaptiveRewiringAdversary(edge_probability=0.25)
        adversary.reset(problem, random.Random(11))
        for round_index in range(1, 10):
            edges = adversary.edges_for_round(round_index, make_observation(problem, round_index))
            assert is_connected(problem.nodes, edges)

    def test_handles_missing_observation_gracefully(self):
        problem = single_source_problem(10, 3)
        adversary = AdaptiveRewiringAdversary(edge_probability=0.25, targeted_cuts=3)
        adversary.reset(problem, random.Random(12))
        adversary.edges_for_round(1, None)
        edges = adversary.edges_for_round(2, None)
        assert is_connected(problem.nodes, edges)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveRewiringAdversary(targeted_cuts=-1)
        with pytest.raises(ConfigurationError):
            AdaptiveRewiringAdversary(random_churn=-1)
