"""Tests for the static spanning-tree baseline."""

import pytest

from repro.adversaries import ScheduleAdversary, StaticAdversary
from repro.algorithms.spanning_tree import SpanningTreeAlgorithm
from repro.core.engine import run_execution
from repro.core.messages import MessageKind
from repro.core.problem import (
    multi_source_problem,
    n_gossip_problem,
    single_source_problem,
)
from repro.dynamics.generators import (
    static_complete_schedule,
    static_path_schedule,
    static_random_schedule,
    static_star_schedule,
)
from tests.conftest import path_edges, star_edges


class TestSpanningTreeConstruction:
    def test_all_nodes_join_the_tree(self):
        problem = single_source_problem(9, 2)
        algorithm = SpanningTreeAlgorithm()
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_random_schedule(9, 0.3, seed=1)), seed=1
        )
        assert result.completed
        assert all(algorithm.tree_parent(node) is not None for node in problem.nodes)

    def test_root_defaults_to_minimum_id(self):
        problem = single_source_problem(6, 1)
        algorithm = SpanningTreeAlgorithm()
        run_execution(problem, algorithm, StaticAdversary(6, path_edges(6)), seed=2)
        assert algorithm.root == 0
        assert algorithm.tree_parent(0) == 0

    def test_explicit_root(self):
        problem = single_source_problem(6, 1)
        algorithm = SpanningTreeAlgorithm(root=3)
        result = run_execution(problem, algorithm, StaticAdversary(6, path_edges(6)), seed=3)
        assert result.completed
        assert algorithm.root == 3

    def test_children_are_consistent_with_parents(self):
        problem = single_source_problem(8, 1)
        algorithm = SpanningTreeAlgorithm()
        run_execution(
            problem, algorithm, ScheduleAdversary(static_random_schedule(8, 0.35, seed=4)), seed=4
        )
        for node in problem.nodes:
            for child in algorithm.tree_children(node):
                assert algorithm.tree_parent(child) == node


class TestSpanningTreeDissemination:
    @pytest.mark.parametrize("builder,name", [
        (lambda: static_path_schedule(8), "path"),
        (lambda: static_star_schedule(8), "star"),
        (lambda: static_complete_schedule(8), "complete"),
        (lambda: static_random_schedule(8, 0.4, seed=9), "random"),
    ])
    def test_completes_on_static_topologies(self, builder, name):
        problem = single_source_problem(8, 4)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), ScheduleAdversary(builder(), name=name), seed=5
        )
        assert result.completed, name
        result.verify_dissemination()

    def test_completes_for_multi_source(self):
        problem = multi_source_problem(8, {1: 2, 5: 3})
        result = run_execution(
            problem, SpanningTreeAlgorithm(), StaticAdversary(8, path_edges(8)), seed=6
        )
        assert result.completed

    def test_completes_for_n_gossip(self):
        problem = n_gossip_problem(7)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), ScheduleAdversary(static_complete_schedule(7)), seed=7
        )
        assert result.completed

    def test_message_breakdown_has_control_and_token_messages(self):
        problem = single_source_problem(8, 4)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), StaticAdversary(8, path_edges(8)), seed=8
        )
        assert result.messages.messages_of_kind(MessageKind.CONTROL) > 0
        assert result.messages.messages_of_kind(MessageKind.TOKEN) > 0


class TestSpanningTreeCost:
    def test_total_cost_bounded_by_construction_plus_pipelining(self):
        n, k = 10, 8
        problem = single_source_problem(n, k)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), ScheduleAdversary(static_complete_schedule(n)), seed=9
        )
        assert result.completed
        m = n * (n - 1) // 2
        # join floods (≤ 2m) + parent acks (≤ n) + up/down token transfers (≤ 2nk).
        assert result.total_messages <= 2 * m + n + 2 * n * k

    def test_amortized_cost_decreases_with_more_tokens(self):
        n = 10
        problem_few = single_source_problem(n, 2)
        problem_many = single_source_problem(n, 40)
        adversary = lambda: ScheduleAdversary(static_complete_schedule(n))
        few = run_execution(problem_few, SpanningTreeAlgorithm(), adversary(), seed=10)
        many = run_execution(problem_many, SpanningTreeAlgorithm(), adversary(), seed=10)
        assert many.amortized_messages() < few.amortized_messages()

    def test_pipelining_round_complexity_on_path(self):
        n, k = 10, 5
        problem = single_source_problem(n, k, source=n - 1)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), StaticAdversary(n, path_edges(n)), seed=11
        )
        assert result.completed
        # Tokens travel up the path to the root and back down, pipelined:
        # O(n + k) with small constants.
        assert result.rounds <= 4 * (n + k)
