"""Stage-level tests for the staged round kernel and the knowledge states."""

import random

import pytest

from repro.adversaries.base import Adversary
from repro.adversaries.oblivious import ControlledChurnAdversary
from repro.algorithms.flooding import FloodingAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.backends.differential import diff_results
from repro.core.events import TokenLearning
from repro.core.messages import (
    CompletenessMessage,
    ControlMessage,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.observation import RoundObservation, SentRecord
from repro.core.problem import multi_source_problem, single_source_problem
from repro.core.rounds import (
    AccountingStage,
    AdversaryStage,
    RoundKernel,
)
from repro.core.state import (
    BitsetKnowledgeState,
    MappingKnowledgeState,
    bit_indices,
)
from repro.core.tokens import Token
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
)
from tests.conftest import path_edges


class FixedEdgesAdversary(Adversary):
    """Returns a fixed edge list every round (stage-level test double)."""

    oblivious = True

    def __init__(self, edges):
        super().__init__()
        self._edges = edges

    def edges_for_round(self, round_index, observation):
        return list(self._edges)


def make_stage(adversary, *, n=4, require_connected=True, keep_trace=True):
    nodes = tuple(range(n))
    index_of = {node: index for index, node in enumerate(nodes)}
    return AdversaryStage(
        nodes,
        index_of,
        adversary,
        require_connected=require_connected,
        keep_trace=keep_trace,
    )


class TestAdversaryStage:
    def test_rejects_disconnected_round_graphs(self):
        stage = make_stage(FixedEdgesAdversary([(0, 1)]), n=4)
        with pytest.raises(AdversaryViolationError, match="disconnected"):
            stage.advance(1, None, None)

    def test_disconnected_allowed_when_connectivity_disabled(self):
        stage = make_stage(
            FixedEdgesAdversary([(0, 1)]), n=4, require_connected=False
        )
        stage.advance(1, None, None)
        assert stage.adj[0] == 0b0010
        assert stage.adj[2] == 0

    def test_rejects_unknown_endpoints(self):
        stage = make_stage(FixedEdgesAdversary([(0, 99)]), n=4)
        with pytest.raises(ConfigurationError, match="outside the node set"):
            stage.advance(1, None, None)

    def test_rejects_self_loops(self):
        stage = make_stage(
            FixedEdgesAdversary(path_edges(4) + [(2, 2)]), n=4
        )
        with pytest.raises(ConfigurationError, match="self-loop"):
            stage.advance(1, None, None)

    def test_trace_and_adjacency_track_the_delta(self):
        class Switching(Adversary):
            oblivious = True

            def edges_for_round(self, round_index, observation):
                return path_edges(4) if round_index == 1 else [(0, 1), (1, 3), (3, 2)]

        stage = make_stage(Switching(), n=4)
        stage.advance(1, None, None)
        assert stage.trace.edges_in_round(1) == frozenset({(0, 1), (1, 2), (2, 3)})
        stage.advance(2, None, None)
        assert stage.inserted_ids and stage.removed_ids
        assert stage.trace.topological_changes() == 4  # 3 initial + 1 swap
        assert stage.neighbors_view()[1] == frozenset({0, 3})

    def test_oblivious_adversaries_never_receive_observations(self):
        class Recording(FixedEdgesAdversary):
            def __init__(self, edges):
                super().__init__(edges)
                self.observations = []

            def edges_for_round(self, round_index, observation):
                self.observations.append(observation)
                return super().edges_for_round(round_index, observation)

        adversary = Recording(path_edges(4))
        stage = make_stage(adversary, n=4)
        # The stage never touches the program for an oblivious adversary:
        # passing None proves obliviousness is enforced structurally.
        stage.advance(1, None, None)
        assert adversary.observations == [None]


class RecordingAdversary(Adversary):
    """Adaptive path adversary logging when (and with what) it is invoked."""

    oblivious = False

    def __init__(self, log):
        super().__init__()
        self.log = log

    def edges_for_round(self, round_index, observation):
        self.log.append(("adversary", round_index, observation))
        nodes = list(self.nodes)
        return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]


class RecordingFlooding(FloodingAlgorithm):
    """Logs the commit; being a subclass it takes the exchange path."""

    def __init__(self, log):
        super().__init__()
        self.log = log

    def select_broadcasts(self, round_index):
        self.log.append(("commit", round_index))
        return super().select_broadcasts(round_index)


class RecordingNaiveUnicast(NaiveUnicastAlgorithm):
    def __init__(self, log):
        super().__init__()
        self.log = log

    def select_messages(self, round_index, neighbors):
        self.log.append(("select", round_index))
        return super().select_messages(round_index, neighbors)


class TestStageOrdering:
    """Section 1.3's model asymmetry: local broadcast commits payloads before
    the adversary fixes the graph; unicast fixes the graph first."""

    def test_local_broadcast_commits_before_the_graph_is_fixed(self):
        log = []
        problem = single_source_problem(5, 2)
        kernel = RoundKernel(
            problem, RecordingFlooding(log), RecordingAdversary(log), seed=0
        )
        kernel.run()
        commit_1 = log.index(("commit", 1))
        adversary_1 = next(
            index for index, entry in enumerate(log) if entry[0] == "adversary"
        )
        assert commit_1 < adversary_1
        # The committed payloads are visible to the adaptive adversary.
        observation = log[adversary_1][2]
        assert observation is not None
        assert observation.broadcasting_nodes() == [0]

    def test_unicast_fixes_the_graph_before_messages_are_selected(self):
        log = []
        problem = single_source_problem(5, 2)
        kernel = RoundKernel(
            problem, RecordingNaiveUnicast(log), RecordingAdversary(log), seed=0
        )
        kernel.run()
        adversary_1 = log.index(
            next(entry for entry in log if entry[0] == "adversary")
        )
        select_1 = log.index(("select", 1))
        assert adversary_1 < select_1
        # No payloads exist when the unicast adversary picks the graph.
        observation = log[adversary_1][2]
        assert observation is not None
        assert dict(observation.broadcast_payloads) == {}


class TestKnowledgeStateParity:
    """The two representations must be observationally identical."""

    def states(self):
        problem = multi_source_problem(6, {0: 3, 3: 2, 5: 1})
        return problem, MappingKnowledgeState(problem), BitsetKnowledgeState(problem)

    def test_random_learn_sequences_stay_in_lockstep(self):
        problem, mapping, bitset = self.states()
        rng = random.Random(7)
        pairs = [
            (node, token) for node in problem.nodes for token in problem.tokens
        ]
        rng.shuffle(pairs)
        for node, token in pairs:
            assert mapping.learn(node, token) == bitset.learn(node, token)
            for check_node in problem.nodes:
                assert mapping.known_tokens(check_node) == bitset.known_tokens(
                    check_node
                )
                assert mapping.missing_tokens(check_node) == bitset.missing_tokens(
                    check_node
                )
                assert mapping.is_node_complete(check_node) == bitset.is_node_complete(
                    check_node
                )
            assert mapping.incomplete_count() == bitset.incomplete_count()
            assert mapping.all_complete() == bitset.all_complete()
        assert mapping.all_complete() and bitset.all_complete()
        # The buffered learning events drain in the same order.
        assert mapping.drain_learnings() == bitset.drain_learnings()
        assert mapping.drain_learnings() == []

    def test_index_layer_matches_across_representations(self):
        problem, mapping, bitset = self.states()
        for index in range(mapping.n):
            assert mapping.know_mask(index) == bitset.know_mask(index)
            assert mapping.known_count(index) == bitset.known_count(index)
        for token_bit in range(mapping.k):
            assert mapping.holders_mask(token_bit) == bitset.holders_mask(token_bit)

    def test_bit_indices_enumerates_ascending(self):
        assert bit_indices(0) == []
        assert bit_indices(0b101001) == [0, 3, 5]


class TestAccountingParity:
    """One kernel, either state: message statistics and events must agree."""

    def run_with(self, state_factory):
        problem = single_source_problem(10, 8)
        kernel = RoundKernel(
            problem,
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=2),
            state_factory=state_factory,
            seed=3,
        )
        return kernel.run()

    def test_exchange_program_results_identical_on_either_state(self):
        mapping_result = self.run_with(MappingKnowledgeState)
        bitset_result = self.run_with(BitsetKnowledgeState)
        assert diff_results(mapping_result, bitset_result) == []
        assert (
            mapping_result.messages.per_node_messages
            == bitset_result.messages.per_node_messages
        )
        assert mapping_result.events.events == bitset_result.events.events


class TestEdgeIdTrace:
    def test_edge_lifetime_normalizes_reversed_edges(self):
        problem = single_source_problem(6, 3)
        kernel = RoundKernel(
            problem,
            NaiveUnicastAlgorithm(),
            FixedEdgesAdversary(path_edges(6)),
            seed=1,
        )
        result = kernel.run()
        lifetime = result.trace.edge_lifetime((0, 1))
        assert lifetime == result.rounds > 0
        assert result.trace.edge_lifetime((1, 0)) == lifetime


class TestFastProgramStateContract:
    def test_fast_programs_require_the_bitset_state(self):
        problem = single_source_problem(4, 2)
        with pytest.raises(ConfigurationError, match="BitsetKnowledgeState"):
            RoundKernel(
                problem,
                FloodingAlgorithm(),
                ControlledChurnAdversary(),
                state_factory=MappingKnowledgeState,
                allow_fast_programs=True,
            )

    def test_exchange_programs_accept_either_state(self):
        problem = single_source_problem(4, 2)
        for state_factory in (MappingKnowledgeState, BitsetKnowledgeState):
            kernel = RoundKernel(
                problem,
                FloodingAlgorithm(),
                ControlledChurnAdversary(changes_per_round=1),
                state_factory=state_factory,
                allow_fast_programs=False,
                seed=1,
            )
            assert kernel.run().completed


class TestAccountingStage:
    def test_round_bracketing_is_enforced(self):
        from repro.core.comm import CommunicationModel

        stage = AccountingStage(CommunicationModel.UNICAST, (0, 1, 2))
        with pytest.raises(ConfigurationError):
            stage.close_round(1, None)
        stage.begin_round()
        with pytest.raises(ConfigurationError):
            stage.begin_round()

    def test_counters_aggregate_by_kind_round_and_node(self):
        from repro.core.comm import CommunicationModel

        class NoLearnings:
            def drain_learnings(self):
                return []

        stage = AccountingStage(CommunicationModel.UNICAST, (0, 1, 2))
        stage.begin_round()
        stage.count(0, "token")
        stage.count(0, "request")
        stage.count_bulk("token", 2)
        stage.per_node_counts[2] += 2
        stage.close_round(1, NoLearnings())
        statistics = stage.statistics()
        assert statistics.total_messages == 4
        assert statistics.messages_by_kind == {"token": 3, "request": 1}
        assert statistics.per_round_messages == [4]
        assert statistics.per_node_messages == {0: 2, 2: 2}


class TestSlottedHotClasses:
    """The hot per-round dataclasses carry __slots__: no per-instance dict,
    and attribute injection is rejected."""

    def instances(self):
        token = Token(source=0, index=1)
        return [
            TokenMessage(token),
            CompletenessMessage(source=0),
            RequestMessage(source=0, index=1),
            ControlMessage(tag="join"),
            ReceivedMessage(sender=0, payload=TokenMessage(token)),
            SentRecord(sender=0, receiver=None, payload=TokenMessage(token)),
            RoundObservation(round_index=1, knowledge={0: frozenset()}),
            TokenLearning(round_index=1, node=0, token=token),
        ]

    def test_no_instance_dict(self):
        for instance in self.instances():
            assert not hasattr(instance, "__dict__"), type(instance).__name__

    def test_attribute_injection_is_rejected(self):
        for instance in self.instances():
            with pytest.raises(AttributeError):
                # object.__setattr__ bypasses the frozen-dataclass guard, so
                # only __slots__ stops a genuinely new attribute.
                object.__setattr__(instance, "sneaky_attribute", 1)
