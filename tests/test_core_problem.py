"""Unit tests for dissemination problem instances."""

import pytest

from repro.core.problem import (
    DisseminationProblem,
    multi_source_problem,
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
    uniform_multi_source_problem,
)
from repro.core.tokens import Token, make_tokens
from repro.utils.validation import ConfigurationError


class TestSingleSourceProblem:
    def test_basic_shape(self):
        problem = single_source_problem(10, 7)
        assert problem.num_nodes == 10
        assert problem.num_tokens == 7
        assert problem.num_sources == 1
        assert problem.sources == (0,)

    def test_source_holds_all_tokens(self):
        problem = single_source_problem(5, 3, source=2)
        assert problem.initial_tokens_of(2) == frozenset(make_tokens(2, 3))
        assert problem.initial_tokens_of(0) == frozenset()

    def test_required_token_learnings(self):
        problem = single_source_problem(5, 3)
        assert problem.required_token_learnings() == 3 * 4

    def test_invalid_source_rejected(self):
        with pytest.raises(ConfigurationError):
            single_source_problem(5, 3, source=9)

    def test_describe(self):
        info = single_source_problem(6, 2).describe()
        assert info == {"n": 6, "k": 2, "s": 1, "required_learnings": 10}


class TestMultiSourceProblem:
    def test_token_counts_per_source(self):
        problem = multi_source_problem(10, {1: 2, 4: 3})
        assert problem.num_tokens == 5
        assert problem.num_sources == 2
        assert len(problem.tokens_of_source(1)) == 2
        assert len(problem.tokens_of_source(4)) == 3

    def test_sources_sorted(self):
        problem = multi_source_problem(10, {7: 1, 2: 1})
        assert problem.sources == (2, 7)

    def test_rejects_unknown_source(self):
        with pytest.raises(ConfigurationError):
            multi_source_problem(4, {9: 1})

    def test_rejects_empty_mapping(self):
        with pytest.raises(ConfigurationError):
            multi_source_problem(4, {})

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            multi_source_problem(4, {0: 0})


class TestNGossipProblem:
    def test_one_token_per_node(self):
        problem = n_gossip_problem(6)
        assert problem.num_tokens == 6
        assert problem.num_sources == 6
        for node in problem.nodes:
            assert len(problem.initial_tokens_of(node)) == 1

    def test_required_learnings(self):
        problem = n_gossip_problem(6)
        assert problem.required_token_learnings() == 6 * 5


class TestUniformMultiSourceProblem:
    def test_token_total_and_source_count(self):
        problem = uniform_multi_source_problem(20, 4, 10, seed=1)
        assert problem.num_tokens == 10
        assert problem.num_sources == 4

    def test_tokens_spread_evenly(self):
        problem = uniform_multi_source_problem(20, 4, 10, seed=2)
        counts = sorted(len(problem.initial_tokens_of(s)) for s in problem.sources)
        assert counts in ([2, 2, 3, 3], [2, 3, 3, 2], [3, 3, 2, 2])
        assert max(counts) - min(counts) <= 1

    def test_rejects_more_sources_than_nodes(self):
        with pytest.raises(ConfigurationError):
            uniform_multi_source_problem(3, 5, 10)

    def test_rejects_fewer_tokens_than_sources(self):
        with pytest.raises(ConfigurationError):
            uniform_multi_source_problem(10, 5, 3)

    def test_deterministic_for_seed(self):
        a = uniform_multi_source_problem(15, 3, 9, seed=5)
        b = uniform_multi_source_problem(15, 3, 9, seed=5)
        assert a.sources == b.sources


class TestRandomAssignmentProblem:
    def test_token_universe_size(self):
        problem = random_assignment_problem(10, 8, seed=1)
        assert problem.num_tokens == 8

    def test_every_token_placed_somewhere(self):
        problem = random_assignment_problem(10, 8, inclusion_probability=0.0, seed=2)
        covered = set()
        for node in problem.nodes:
            covered |= problem.initial_tokens_of(node)
        assert covered == set(problem.tokens)

    def test_average_initial_knowledge_below_half(self):
        problem = random_assignment_problem(30, 40, inclusion_probability=0.25, seed=3)
        average = sum(
            len(problem.initial_tokens_of(node)) for node in problem.nodes
        ) / problem.num_nodes
        assert average <= problem.num_tokens / 2

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            random_assignment_problem(5, 5, inclusion_probability=2.0)


class TestDisseminationProblemValidation:
    def test_rejects_token_not_placed(self):
        tokens = make_tokens(0, 2)
        with pytest.raises(ConfigurationError):
            DisseminationProblem((0, 1), tokens, {0: frozenset({tokens[0]})})

    def test_rejects_initial_knowledge_for_unknown_node(self):
        tokens = make_tokens(0, 1)
        with pytest.raises(ConfigurationError):
            DisseminationProblem((0, 1), tokens, {0: frozenset(tokens), 5: frozenset()})

    def test_rejects_unknown_token_in_knowledge(self):
        tokens = make_tokens(0, 1)
        with pytest.raises(ConfigurationError):
            DisseminationProblem(
                (0, 1), tokens, {0: frozenset(tokens), 1: frozenset({Token(9, 1)})}
            )

    def test_tokens_of_source_sorted(self):
        problem = multi_source_problem(5, {0: 3})
        assert problem.tokens_of_source(0) == make_tokens(0, 3)
