"""Unit tests for message accounting, events and execution results."""

import pytest

from repro.core.comm import CommunicationModel
from repro.core.events import EventLog
from repro.core.messages import CompletenessMessage, MessageKind, RequestMessage, TokenMessage
from repro.core.metrics import MessageAccountant
from repro.core.tokens import Token
from repro.utils.validation import ConfigurationError


class TestCommunicationModel:
    def test_flags(self):
        assert CommunicationModel.LOCAL_BROADCAST.is_broadcast
        assert not CommunicationModel.LOCAL_BROADCAST.is_unicast
        assert CommunicationModel.UNICAST.is_unicast
        assert not CommunicationModel.UNICAST.is_broadcast

    def test_str(self):
        assert str(CommunicationModel.UNICAST) == "unicast"


class TestMessageAccountantBroadcast:
    def test_counts_one_per_broadcast(self):
        accountant = MessageAccountant(CommunicationModel.LOCAL_BROADCAST)
        accountant.begin_round()
        accountant.count_broadcast(0, TokenMessage(Token(0, 1)))
        accountant.count_broadcast(1, TokenMessage(Token(0, 1)))
        assert accountant.end_round() == 2
        assert accountant.total_messages == 2

    def test_unicast_count_rejected_in_broadcast_model(self):
        accountant = MessageAccountant(CommunicationModel.LOCAL_BROADCAST)
        accountant.begin_round()
        with pytest.raises(ConfigurationError):
            accountant.count_unicast(0, 1, TokenMessage(Token(0, 1)))

    def test_counting_outside_round_rejected(self):
        accountant = MessageAccountant(CommunicationModel.LOCAL_BROADCAST)
        with pytest.raises(ConfigurationError):
            accountant.count_broadcast(0, TokenMessage(Token(0, 1)))


class TestMessageAccountantUnicast:
    def _accountant(self):
        accountant = MessageAccountant(CommunicationModel.UNICAST)
        accountant.begin_round()
        return accountant

    def test_counts_per_receiver(self):
        accountant = self._accountant()
        accountant.count_unicast(0, 1, TokenMessage(Token(0, 1)))
        accountant.count_unicast(0, 2, TokenMessage(Token(0, 1)))
        accountant.end_round()
        assert accountant.total_messages == 2

    def test_kind_breakdown(self):
        accountant = self._accountant()
        accountant.count_unicast(0, 1, TokenMessage(Token(0, 1)))
        accountant.count_unicast(1, 0, RequestMessage(0, 1))
        accountant.count_unicast(2, 0, CompletenessMessage(source=0))
        accountant.end_round()
        stats = accountant.snapshot()
        assert stats.messages_of_kind(MessageKind.TOKEN) == 1
        assert stats.messages_of_kind(MessageKind.REQUEST) == 1
        assert stats.messages_of_kind(MessageKind.COMPLETENESS) == 1
        assert stats.messages_of_kind(MessageKind.CONTROL) == 0

    def test_self_message_rejected(self):
        accountant = self._accountant()
        with pytest.raises(ConfigurationError):
            accountant.count_unicast(0, 0, TokenMessage(Token(0, 1)))

    def test_broadcast_count_rejected_in_unicast_model(self):
        accountant = self._accountant()
        with pytest.raises(ConfigurationError):
            accountant.count_broadcast(0, TokenMessage(Token(0, 1)))

    def test_double_begin_round_rejected(self):
        accountant = self._accountant()
        with pytest.raises(ConfigurationError):
            accountant.begin_round()

    def test_end_round_without_begin_rejected(self):
        accountant = MessageAccountant(CommunicationModel.UNICAST)
        with pytest.raises(ConfigurationError):
            accountant.end_round()

    def test_per_round_and_per_node_breakdown(self):
        accountant = MessageAccountant(CommunicationModel.UNICAST)
        accountant.begin_round()
        accountant.count_unicast(0, 1, TokenMessage(Token(0, 1)))
        accountant.end_round()
        accountant.begin_round()
        accountant.count_unicast(1, 0, TokenMessage(Token(0, 1)))
        accountant.count_unicast(1, 2, TokenMessage(Token(0, 1)))
        accountant.end_round()
        stats = accountant.snapshot()
        assert stats.per_round_messages == [1, 2]
        assert stats.per_node_messages == {0: 1, 1: 2}


class TestMessageStatisticsDerivedMetrics:
    def _stats(self, total=100):
        accountant = MessageAccountant(CommunicationModel.UNICAST)
        accountant.begin_round()
        for index in range(total):
            accountant.count_unicast(0, 1 + index % 3, TokenMessage(Token(0, 1)))
        accountant.end_round()
        return accountant.snapshot()

    def test_amortized(self):
        assert self._stats(100).amortized(10) == pytest.approx(10.0)

    def test_amortized_rejects_non_positive_k(self):
        with pytest.raises(ConfigurationError):
            self._stats().amortized(0)

    def test_adversary_competitive_subtracts_alpha_tc(self):
        stats = self._stats(100)
        assert stats.adversary_competitive(30, alpha=1.0) == pytest.approx(70.0)
        assert stats.adversary_competitive(30, alpha=2.0) == pytest.approx(40.0)

    def test_adversary_competitive_clamped_at_zero(self):
        stats = self._stats(10)
        assert stats.adversary_competitive(1000, alpha=1.0) == 0.0

    def test_adversary_competitive_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            self._stats().adversary_competitive(10, alpha=-1.0)

    def test_adversary_competitive_rejects_negative_tc(self):
        with pytest.raises(ConfigurationError):
            self._stats().adversary_competitive(-5)

    def test_amortized_adversary_competitive(self):
        stats = self._stats(100)
        assert stats.amortized_adversary_competitive(10, 20) == pytest.approx(8.0)


class TestEventLog:
    def test_record_and_totals(self):
        log = EventLog()
        log.record(1, 0, Token(0, 1))
        log.record(1, 1, Token(0, 1))
        log.record(3, 0, Token(0, 2))
        assert log.total_learnings() == 3
        assert log.learnings_in_round(1) == 2
        assert log.learnings_in_round(2) == 0
        assert log.learnings_of_node(0) == 2

    def test_max_learnings_and_rounds(self):
        log = EventLog()
        log.record(2, 0, Token(0, 1))
        log.record(2, 1, Token(0, 1))
        log.record(5, 2, Token(0, 1))
        assert log.max_learnings_in_a_round() == 2
        assert log.rounds_with_learnings() == [2, 5]
        assert log.last_learning_round() == 5

    def test_empty_log(self):
        log = EventLog()
        assert log.total_learnings() == 0
        assert log.max_learnings_in_a_round() == 0
        assert log.last_learning_round() is None
        assert list(log) == []

    def test_events_are_ordered_dataclasses(self):
        log = EventLog()
        event = log.record(1, 4, Token(2, 1))
        assert event.round_index == 1
        assert event.node == 4
        assert event.token == Token(2, 1)
        assert len(log) == 1
