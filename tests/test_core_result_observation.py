"""Tests for ExecutionResult derived metrics and RoundObservation, plus
failure-injection checks for malformed adversaries and algorithms."""

import pytest

from repro.adversaries import StaticAdversary
from repro.adversaries.base import Adversary
from repro.algorithms.base import UnicastAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.core.engine import run_execution
from repro.core.messages import RequestMessage, TokenMessage
from repro.core.observation import RoundObservation, SentRecord
from repro.core.problem import single_source_problem
from repro.core.tokens import Token
from repro.utils.validation import ConfigurationError, ProtocolViolationError
from tests.conftest import path_edges


def completed_result(num_nodes=6, num_tokens=3, seed=1):
    problem = single_source_problem(num_nodes, num_tokens)
    return run_execution(
        problem, NaiveUnicastAlgorithm(), StaticAdversary(num_nodes, path_edges(num_nodes)),
        seed=seed,
    )


class TestExecutionResultMetrics:
    def test_amortized_is_total_over_k(self):
        result = completed_result(num_tokens=4)
        assert result.amortized_messages() == pytest.approx(result.total_messages / 4)

    def test_competitive_cost_with_various_alphas(self):
        result = completed_result()
        tc = result.topological_changes
        assert result.adversary_competitive_messages(alpha=0.0) == result.total_messages
        assert result.adversary_competitive_messages(alpha=1.0) == pytest.approx(
            max(0, result.total_messages - tc)
        )

    def test_amortized_competitive_consistent(self):
        result = completed_result(num_tokens=3)
        assert result.amortized_adversary_competitive_messages() == pytest.approx(
            result.adversary_competitive_messages() / 3
        )

    def test_num_nodes_and_tokens_exposed(self):
        result = completed_result(num_nodes=7, num_tokens=2)
        assert result.num_nodes == 7
        assert result.num_tokens == 2

    def test_summary_round_trip_values(self):
        result = completed_result()
        summary = result.summary()
        assert summary["total_messages"] == result.total_messages
        assert summary["topological_changes"] == result.topological_changes
        assert summary["completed"] is True

    def test_verify_dissemination_accepts_completed_run(self):
        completed_result().verify_dissemination()


class TestRoundObservation:
    def test_broadcasting_nodes_sorted_and_filtered(self):
        observation = RoundObservation(
            round_index=1,
            knowledge={0: frozenset(), 1: frozenset(), 2: frozenset()},
            broadcast_payloads={
                2: TokenMessage(Token(0, 1)),
                0: TokenMessage(Token(0, 1)),
                1: None,
            },
        )
        assert observation.broadcasting_nodes() == [0, 2]

    def test_defaults(self):
        observation = RoundObservation(round_index=3, knowledge={})
        assert observation.broadcast_payloads == {}
        assert observation.previous_messages == ()
        assert observation.extra == {}

    def test_sent_record_fields(self):
        record = SentRecord(sender=1, receiver=None, payload=RequestMessage(0, 2))
        assert record.receiver is None
        assert record.payload.token == Token(0, 2)


class BadEdgeAdversary(Adversary):
    """Returns edges with endpoints outside the node set."""

    oblivious = True
    name = "bad-edges"

    def edges_for_round(self, round_index, observation):
        return [(0, 999)]


class SelfLoopAdversary(Adversary):
    """Returns a self-loop edge."""

    oblivious = True
    name = "self-loop"

    def edges_for_round(self, round_index, observation):
        return [(0, 0), (0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]


class UnknownSenderAlgorithm(UnicastAlgorithm):
    """Schedules messages on behalf of a node that does not exist."""

    name = "unknown-sender"

    def select_messages(self, round_index, neighbors):
        return {999: {0: [TokenMessage(self.problem.tokens[0])]}}


class TestFailureInjection:
    def test_adversary_with_out_of_range_edges_is_rejected(self):
        problem = single_source_problem(6, 2)
        with pytest.raises(ConfigurationError):
            run_execution(problem, NaiveUnicastAlgorithm(), BadEdgeAdversary(), seed=0)

    def test_adversary_with_self_loops_is_rejected(self):
        problem = single_source_problem(6, 2)
        with pytest.raises(ConfigurationError):
            run_execution(problem, NaiveUnicastAlgorithm(), SelfLoopAdversary(), seed=0)

    def test_algorithm_with_unknown_sender_is_rejected(self):
        problem = single_source_problem(6, 2)
        with pytest.raises(ProtocolViolationError):
            run_execution(
                problem, UnknownSenderAlgorithm(), StaticAdversary(6, path_edges(6)), seed=0
            )

    def test_adversary_reset_required_before_use(self):
        adversary = StaticAdversary(4, path_edges(4))
        with pytest.raises(Exception):
            _ = adversary.problem
