"""Tests for the fluent Experiment API (:mod:`repro.api`)."""

import json
import types

import pytest

from repro.api import (
    Experiment,
    ExperimentError,
    ExperimentPlan,
    PlanCell,
    RunSet,
    load_runs,
)
from repro.results import RunStore
from repro.scenarios import ScenarioRunner, ScenarioSpec, record_to_json_line, sweep
from repro.utils.validation import ConfigurationError, ReproError


def small_experiment(**overrides):
    """A fast two-scenario, two-repetition experiment."""
    params = dict(
        algorithm="flooding",
        adversary="static-random",
        num_nodes=[6, 8],
        num_tokens=4,
    )
    params.update(overrides)
    return Experiment.grid(**params).seeds(2)


class TestExperimentBuilder:
    def test_grid_splits_fields_dimensions_and_problem_params(self):
        experiment = Experiment.grid(
            algorithm="flooding",
            adversary="static-random",
            backend="bitset",
            seed=3,
            num_nodes=[8, 10],
            num_tokens=4,
        )
        specs = experiment.specs()
        assert len(specs) == 2
        assert {spec.problem_params["num_nodes"] for spec in specs} == {8, 10}
        assert all(spec.algorithm == "flooding" for spec in specs)
        assert all(spec.backend == "bitset" for spec in specs)
        assert all(spec.seed == 3 for spec in specs)
        assert all(spec.problem_params["num_tokens"] == 4 for spec in specs)

    def test_colliding_grid_keys_are_rejected_not_silently_merged(self):
        with pytest.raises(ConfigurationError, match="both address"):
            Experiment.grid(
                {"problem.num_nodes": [8]}, num_nodes=[16, 32], num_tokens=4
            )
        with pytest.raises(ConfigurationError, match="both address"):
            Experiment.grid({"problem.num_nodes": [8, 64]}, num_nodes=16)
        # The identically spelled collision (mapping + kwarg) is caught too.
        with pytest.raises(ConfigurationError, match="pass each once"):
            Experiment.grid({"num_nodes": [8, 64]}, num_nodes=16, num_tokens=4)

    def test_dotted_keys_go_through_the_dimensions_mapping(self):
        experiment = Experiment.grid(
            {"adversary.changes_per_round": [1, 2]},
            num_nodes=8,
            num_tokens=4,
        )
        specs = experiment.specs()
        assert {spec.adversary_params["changes_per_round"] for spec in specs} == {1, 2}

    def test_fluent_methods_return_new_experiments(self):
        base = small_experiment()
        assert base.seeds(5) is not base
        assert base.backend("bitset") is not base
        assert base.store("somewhere") is not base
        # The original is untouched: builders are reusable.
        assert all(spec.repetitions == 2 for spec in base.specs())

    def test_seeds_int_sets_repetitions_and_list_sweeps_seed(self):
        assert all(spec.repetitions == 7 for spec in small_experiment().seeds(7).specs())
        swept = small_experiment().seeds([0, 1, 2]).specs()
        assert {spec.seed for spec in swept} == {0, 1, 2}

    def test_configure_merges_section_params(self):
        experiment = small_experiment().configure(problem={"num_tokens": 9}, max_rounds=50)
        assert all(spec.problem_params["num_tokens"] == 9 for spec in experiment.specs())
        assert all(spec.max_rounds == 50 for spec in experiment.specs())

    def test_vary_replaces_an_existing_dimension(self):
        experiment = small_experiment().vary("num_nodes", [12])
        assert [spec.problem_params["num_nodes"] for spec in experiment.specs()] == [12]

    def test_explicit_specs_cannot_gain_dimensions(self):
        spec = ScenarioSpec(
            problem="single-source",
            problem_params={"num_nodes": 6, "num_tokens": 4},
            algorithm="flooding",
            adversary="static-random",
            adversary_params={"num_nodes": 6},
        )
        experiment = Experiment.from_specs([spec])
        with pytest.raises(ExperimentError, match="explicit"):
            experiment.vary("num_nodes", [8])
        # But execution details still configure fluently.
        assert experiment.backend("bitset").specs()[0].backend == "bitset"

    def test_invalid_inputs_raise_configuration_errors(self):
        with pytest.raises(ConfigurationError, match="no values"):
            Experiment.grid(num_nodes=[])
        with pytest.raises(ConfigurationError, match="seeds"):
            small_experiment().seeds(True)
        with pytest.raises(ConfigurationError, match="at least one spec"):
            Experiment.from_specs([])
        with pytest.raises(ConfigurationError, match="ScenarioSpec"):
            Experiment.from_specs([object()])

    def test_registry_typos_fail_at_plan_time_with_a_suggestion(self):
        experiment = Experiment.grid(algorithm="floodng", num_nodes=8, num_tokens=4)
        with pytest.raises(ConfigurationError, match="did you mean 'flooding'"):
            experiment.plan()

    def test_adversary_num_nodes_is_autofilled_per_grid_point(self):
        specs = Experiment.grid(
            adversary="star-oscillator", num_nodes=[6, 8], num_tokens=4
        ).specs()
        assert [spec.adversary_params["num_nodes"] for spec in specs] == [6, 8]

    def test_explicit_adversary_num_nodes_wins_over_autofill(self):
        specs = Experiment.grid(
            {"adversary.num_nodes": 6},
            adversary="star-oscillator",
            num_nodes=8,
            num_tokens=4,
        ).specs()
        assert specs[0].adversary_params["num_nodes"] == 6


class TestPlan:
    def test_plan_enumerates_cells_with_derived_seeds(self):
        plan = small_experiment().plan()
        assert isinstance(plan, ExperimentPlan)
        assert len(plan) == 4
        assert all(isinstance(cell, PlanCell) and not cell.cached for cell in plan)
        assert plan.describe() == {"cells": 4, "pending": 4, "cached": 0, "scenarios": 2}
        seeds = {cell.seed for cell in plan}
        assert len(seeds) == 4  # content-derived, all distinct here

    def test_plan_against_a_store_marks_cached_cells(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        experiment.run().records()
        plan = experiment.plan()
        assert plan.describe() == {"cells": 4, "pending": 0, "cached": 4, "scenarios": 2}
        assert all(cell.cached_record["completed"] for cell in plan.cached)

    def test_stale_schema_records_do_not_satisfy_cells(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        runset = experiment.run()
        records = runset.records()
        # Rewrite the store with the same records under an older schema.
        stale_dir = tmp_path / "stale"
        stale = RunStore(stale_dir)
        stale.add([dict(record, schema_version=1) for record in records])
        plan = small_experiment().store(stale_dir).plan()
        assert len(plan.pending) == 4

    def test_stale_schema_cells_are_upgraded_in_place_not_forever(self, tmp_path):
        """Re-executed cells supersede the stale stored record (last-wins),
        so the upgrade happens exactly once — not on every run."""
        records = small_experiment().store(tmp_path / "store").run().records()
        stale_dir = tmp_path / "stale"
        RunStore(stale_dir).add([dict(record, schema_version=1) for record in records])
        upgrade = small_experiment().store(stale_dir).run()
        assert (upgrade.executed_count, upgrade.stored_count) == (4, 4)
        # The store now serves the upgraded records...
        stored = RunStore(stale_dir).records()
        assert len(stored) == 4
        assert all(record.schema_version != 1 for record in stored)
        # ...and the next run finds everything cached.
        rerun = small_experiment().store(stale_dir).run()
        assert (rerun.executed_count, rerun.cached_count) == (0, 4)

    def test_changed_max_rounds_invalidates_cached_cells(self, tmp_path):
        """max_rounds is excluded from scenario_key (seeding stability) but
        changes the result, so it must invalidate the cache."""
        store_dir = tmp_path / "store"
        capped = small_experiment().configure(max_rounds=1).store(store_dir)
        capped_run = capped.run()
        assert capped_run.executed_count == 4
        assert not capped_run.completed
        uncapped = small_experiment().store(store_dir)
        uncapped_run = uncapped.run()
        assert uncapped_run.executed_count == 4  # nothing served stale
        assert uncapped_run.completed
        # The uncapped records superseded the capped ones; re-running the
        # uncapped experiment is now fully cached...
        assert uncapped.run().executed_count == 0
        # ...and the capped variant correctly re-executes again.
        assert capped.plan().describe()["pending"] == 4

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError, match="workers"):
            small_experiment().plan().run(workers=0)


class TestRunSet:
    def test_records_match_the_scenario_runner_byte_for_byte(self):
        base = ScenarioSpec(
            problem="single-source",
            problem_params={"num_nodes": 6, "num_tokens": 4},
            algorithm="flooding",
            adversary="static-random",
            adversary_params={"num_nodes": 6},
            repetitions=2,
        )
        specs = sweep(base, {"problem.num_nodes": [6, 8]})
        specs = [
            spec.with_params(adversary={"num_nodes": spec.problem_params["num_nodes"]})
            for spec in specs
        ]
        legacy = ScenarioRunner().run(specs)
        fluent = Experiment.from_specs(specs).run().records()
        assert [record_to_json_line(r) for r in fluent] == [
            record_to_json_line(r) for r in legacy
        ]

    def test_parallel_run_is_byte_identical_to_serial(self):
        serial = small_experiment().run(workers=1).records()
        parallel = small_experiment().run(workers=2).records()
        assert [record_to_json_line(r) for r in parallel] == [
            record_to_json_line(r) for r in serial
        ]

    def test_iteration_streams_and_persists_incrementally(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        runset = experiment.run()
        iterator = iter(runset)
        assert isinstance(iterator, types.GeneratorType)
        first = next(iterator)
        # The first record is already durable before the batch finishes.
        assert len(RunStore(tmp_path / "store")) == 1
        rest = list(iterator)
        assert [first] + rest == runset.records()
        assert len(RunStore(tmp_path / "store")) == 4

    def test_new_iteration_supersedes_a_partial_one(self):
        runset = small_experiment().run()
        old_iterator = iter(runset)
        first = next(old_iterator)
        # A second iteration explicitly closes the first (no reliance on
        # garbage collection) and replays its progress without re-running.
        new_iterator = iter(runset)
        assert next(new_iterator) == first
        with pytest.raises(StopIteration):
            next(old_iterator)
        assert len(list(new_iterator)) == 3
        assert runset.executed_count == 4
        assert isinstance(ExperimentError("x"), ReproError)

    def test_abandoned_iteration_resumes_without_reexecuting(self, tmp_path):
        runset = small_experiment().store(tmp_path / "store").run()
        for record in runset:
            first = record
            break  # abandon after one cell
        records = runset.records()  # resumes: replays the prefix, runs the rest
        assert records[0] == first
        assert len(records) == 4
        assert runset.executed_count == 4  # each cell executed exactly once
        assert runset.cached_count == 0

    def test_materialized_runset_replays_without_reexecuting(self):
        runset = small_experiment().run()
        first = runset.records()
        assert runset.executed_count == 4
        assert list(runset) == first  # replay, no second execution
        assert runset.executed_count == 4

    def test_runset_needs_exactly_one_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            RunSet()


class TestIncrementalReruns:
    """The acceptance proof: re-runs execute only the missing delta."""

    def test_second_run_executes_nothing(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        first = experiment.run()
        assert (first.executed_count, first.cached_count) == (4, 0)
        second = experiment.run()
        assert (second.executed_count, second.cached_count) == (0, 4)
        assert second.records() == first.records()

    def test_grown_grid_executes_only_the_delta(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        experiment.run().records()
        grown = experiment.vary("num_nodes", [6, 8, 10]).seeds(3)
        runset = grown.run()
        # 3 scenarios x 3 repetitions = 9 cells; 2x2 already stored.
        assert runset.cached_count == 4
        assert runset.executed_count == 5
        assert len(runset) == 9

    def test_incremental_output_is_byte_identical_to_a_cold_run(self, tmp_path):
        warm = small_experiment().store(tmp_path / "warm")
        warm.run().records()                      # seed the store with the 2x2 grid
        grown = warm.vary("num_nodes", [6, 8, 10]).seeds(3)
        incremental = grown.run()
        assert incremental.executed_count == 5

        cold = (
            small_experiment()
            .vary("num_nodes", [6, 8, 10])
            .seeds(3)
            .store(tmp_path / "cold")
            .run()
        )
        assert cold.executed_count == 9

        # Records agree on every measured field and on scenario identity.
        # (Embedded specs may differ in execution-detail fields like
        # `repetitions`: a cached record honestly reports the run that
        # produced it — those fields are excluded from scenario_key and
        # never reach aggregates or reports.)
        def science(record):
            return {key: value for key, value in record.items() if key != "spec"}

        from repro.results.records import RunRecord

        assert [science(r) for r in incremental.records()] == [
            science(r) for r in cold.records()
        ]
        assert [RunRecord.from_dict(r).scenario_key() for r in incremental.records()] == [
            RunRecord.from_dict(r).scenario_key() for r in cold.records()
        ]
        assert incremental.aggregate(by=["n"]).table("md") == cold.aggregate(
            by=["n"]
        ).table("md")
        assert incremental.aggregate(by=["n"]).compare(bounds=True).report(
            "md"
        ) == cold.aggregate(by=["n"]).compare(bounds=True).report("md")
        # Both stores converged to the same scenarios and repetitions.
        assert [r.identity() for r in RunStore(tmp_path / "warm").records()] == [
            r.identity() for r in RunStore(tmp_path / "cold").records()
        ]


class TestPipelineHandles:
    def test_one_expression_pipeline(self, tmp_path):
        report = (
            Experiment.grid(
                algorithm="flooding",
                adversary="static-random",
                num_nodes=[6, 8],
                num_tokens=4,
            )
            .seeds(2)
            .backend("bitset")
            .store(tmp_path / "store")
            .run(workers=2)
            .aggregate(by=["n"])
            .compare(bounds=True)
            .report("md")
        )
        assert report.startswith("# Results report")
        assert "Table 1 (paper vs measured)" in report

    def test_aggregate_rows_and_table_formats(self):
        aggregated = small_experiment().run().aggregate(by=["n"])
        assert aggregated.group_by == ("n",)
        rows = list(aggregated)
        assert [row["n"] for row in rows] == [6, 8]
        assert all(row["runs"] == 2 for row in rows)
        assert aggregated.table("md").startswith("| n |")
        assert aggregated.table("csv").splitlines()[0].startswith("n,runs")
        parsed = json.loads(aggregated.table("json"))
        assert len(parsed) == len(rows)

    def test_comparison_rows_and_bounds_flag(self):
        runset = small_experiment().run()
        comparison = runset.compare(x_axis="n")
        assert all(row["algorithm"] == "flooding" for row in comparison)
        assert all(row["verdict"] in ("within bound", "above bound") for row in comparison)
        assert len(runset.aggregate().compare(bounds=False)) == 0

    def test_bounds_false_suppresses_verdicts_everywhere(self):
        runset = small_experiment().run()
        unbounded = runset.aggregate().compare(bounds=False)
        with pytest.raises(ConfigurationError, match="bounds=False"):
            unbounded.table()
        document = unbounded.report()
        assert "Paper bounds vs measured" not in document
        assert "Table 1" not in document
        assert document.startswith("# Results report")
        # With bounds (the default) both sections are present.
        assert "Table 1 (paper vs measured)" in runset.compare().report()

    def test_full_report_is_markdown_only(self):
        comparison = small_experiment().run().compare()
        with pytest.raises(ConfigurationError, match="markdown"):
            comparison.report("csv")

    def test_load_runs_over_store_and_jsonl(self, tmp_path):
        experiment = small_experiment().store(tmp_path / "store")
        records = experiment.run().records()
        from_store = load_runs(tmp_path / "store")
        assert len(from_store) == len(records)
        jsonl = tmp_path / "runs.jsonl"
        jsonl.write_text("".join(record_to_json_line(r) + "\n" for r in records))
        from_file = load_runs(str(jsonl))
        assert from_file.aggregate(by=["n"]).table("md") == from_store.aggregate(
            by=["n"]
        ).table("md")

    def test_load_runs_rejects_missing_sources(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such"):
            load_runs(str(tmp_path / "nope.jsonl"))


class TestLegacyRunnerShim:
    def test_experiment_runner_warns_and_round_trips_through_the_new_api(self):
        from repro import ExperimentRunner, single_source_problem
        from repro.adversaries import ControlledChurnAdversary
        from repro.algorithms import FloodingAlgorithm

        with pytest.warns(DeprecationWarning, match="ExperimentRunner is deprecated"):
            runner = ExperimentRunner(base_seed=1)
        legacy = runner.run(
            lambda: single_source_problem(6, 4),
            FloodingAlgorithm,
            lambda: ControlledChurnAdversary(changes_per_round=0, edge_probability=0.25),
            repetitions=2,
        )
        fluent = (
            Experiment.grid(
                algorithm="flooding", adversary="static", num_nodes=6, num_tokens=4
            )
            .seeds(2)
            .run()
            .records()
        )
        assert len(fluent) == len(legacy) == 2
        assert all(record.completed for record in legacy)
        assert all(record["completed"] for record in fluent)
        # Same problem dimensions surface through both record shapes.
        assert {record["n"] for record in fluent} == {6}
        assert all(record.params["n"] == 6 for record in legacy)
