"""Unit tests for the dynamic-graph generators.

Every generator must produce connected round graphs over the full node set;
beyond that each workload has its own structural guarantees.
"""

import pytest

from repro.dynamics.connectivity import is_connected
from repro.dynamics.generators import (
    churn_schedule,
    edge_markovian_schedule,
    geometric_mobility_schedule,
    path_shuffle_schedule,
    random_connected_edges,
    rewiring_regular_schedule,
    star_oscillator_schedule,
    static_complete_schedule,
    static_cycle_schedule,
    static_path_schedule,
    static_random_schedule,
    static_schedule,
    static_star_schedule,
)
from repro.utils.validation import ConfigurationError


def assert_always_connected(schedule):
    for round_index, edges in schedule.iter_rounds():
        assert is_connected(schedule.nodes, edges), f"round {round_index} disconnected"


class TestStaticSchedules:
    def test_complete_graph_edge_count(self):
        schedule = static_complete_schedule(6)
        assert len(schedule.edges_for_round(1)) == 15

    def test_path_edge_count(self):
        schedule = static_path_schedule(6)
        assert len(schedule.edges_for_round(1)) == 5

    def test_path_single_node(self):
        schedule = static_path_schedule(1)
        assert schedule.edges_for_round(1) == frozenset()

    def test_star_edges_touch_center(self):
        schedule = static_star_schedule(5, center=2)
        assert all(2 in edge for edge in schedule.edges_for_round(1))

    def test_star_invalid_center(self):
        with pytest.raises(ConfigurationError):
            static_star_schedule(5, center=9)

    def test_cycle_requires_three_nodes(self):
        with pytest.raises(ConfigurationError):
            static_cycle_schedule(2)

    def test_cycle_edge_count(self):
        schedule = static_cycle_schedule(7)
        assert len(schedule.edges_for_round(1)) == 7

    def test_static_schedule_rejects_disconnected_edges(self):
        with pytest.raises(ConfigurationError):
            static_schedule(4, [(0, 1)])

    def test_static_random_is_connected(self):
        schedule = static_random_schedule(12, edge_probability=0.2, seed=3)
        assert_always_connected(schedule)

    def test_static_schedules_never_change(self):
        schedule = static_complete_schedule(5, num_rounds=4)
        assert schedule.topological_changes() == 10  # only the initial insertion


class TestChurnSchedule:
    def test_always_connected(self):
        schedule = churn_schedule(10, 15, edge_probability=0.2, churn_fraction=0.4, seed=1)
        assert_always_connected(schedule)

    def test_number_of_rounds(self):
        schedule = churn_schedule(8, 7, seed=2)
        assert schedule.num_rounds == 7

    def test_zero_churn_is_static_after_first_round(self):
        schedule = churn_schedule(8, 5, churn_fraction=0.0, seed=3)
        first = schedule.edges_for_round(1)
        assert all(schedule.edges_for_round(r) == first for r in range(2, 6))

    def test_churn_actually_changes_edges(self):
        schedule = churn_schedule(12, 10, edge_probability=0.3, churn_fraction=0.5, seed=4)
        assert schedule.topological_changes() > len(schedule.edges_for_round(1))

    def test_deterministic_for_same_seed(self):
        a = churn_schedule(8, 5, seed=9)
        b = churn_schedule(8, 5, seed=9)
        assert a == b


class TestEdgeMarkovianSchedule:
    def test_always_connected(self):
        schedule = edge_markovian_schedule(10, 12, seed=5)
        assert_always_connected(schedule)

    def test_high_death_probability_produces_churn(self):
        schedule = edge_markovian_schedule(
            10, 12, birth_probability=0.1, death_probability=0.9, seed=6
        )
        assert schedule.topological_changes() > 11

    def test_rejects_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            edge_markovian_schedule(10, 5, birth_probability=1.5)


class TestRewiringRegularSchedule:
    def test_always_connected(self):
        schedule = rewiring_regular_schedule(12, 10, degree=4, seed=7)
        assert_always_connected(schedule)

    def test_degree_roughly_respected(self):
        schedule = rewiring_regular_schedule(20, 5, degree=6, rewire_probability=0.0, seed=8)
        edges = schedule.edges_for_round(1)
        # A 6-regular target on 20 nodes means about 60 edges (ring + chords).
        assert 45 <= len(edges) <= 75

    def test_small_graph_falls_back_to_complete(self):
        schedule = rewiring_regular_schedule(2, 3, degree=2, seed=9)
        assert schedule.edges_for_round(1) == frozenset({(0, 1)})

    def test_rejects_degree_below_two(self):
        with pytest.raises(ConfigurationError):
            rewiring_regular_schedule(10, 5, degree=1)


class TestStarOscillatorSchedule:
    def test_always_connected(self):
        schedule = star_oscillator_schedule(9, 10, seed=10)
        assert_always_connected(schedule)

    def test_every_round_is_a_star(self):
        schedule = star_oscillator_schedule(9, 10, seed=11)
        for _, edges in schedule.iter_rounds():
            assert len(edges) == 8

    def test_center_changes_generate_churn(self):
        schedule = star_oscillator_schedule(9, 10, period=1, seed=12)
        # Each recentring replaces almost all edges.
        assert schedule.topological_changes() > 8 * 5

    def test_period_slows_churn(self):
        fast = star_oscillator_schedule(9, 12, period=1, seed=13)
        slow = star_oscillator_schedule(9, 12, period=6, seed=13)
        assert slow.topological_changes() < fast.topological_changes()


class TestPathShuffleSchedule:
    def test_always_connected(self):
        schedule = path_shuffle_schedule(10, 8, seed=14)
        assert_always_connected(schedule)

    def test_every_round_is_a_path(self):
        schedule = path_shuffle_schedule(10, 8, seed=15)
        for _, edges in schedule.iter_rounds():
            assert len(edges) == 9


class TestGeometricMobilitySchedule:
    def test_always_connected(self):
        schedule = geometric_mobility_schedule(12, 8, radius=0.3, speed=0.1, seed=16)
        assert_always_connected(schedule)

    def test_rejects_non_positive_radius(self):
        with pytest.raises(ConfigurationError):
            geometric_mobility_schedule(5, 3, radius=0.0)

    def test_zero_speed_much_less_churn_than_fast_motion(self):
        frozen = geometric_mobility_schedule(12, 10, radius=0.4, speed=0.0, seed=17)
        moving = geometric_mobility_schedule(12, 10, radius=0.4, speed=0.2, seed=17)
        assert frozen.topological_changes() <= moving.topological_changes()


class TestRandomConnectedEdges:
    def test_connected_even_with_zero_probability(self, rng):
        edges = random_connected_edges(list(range(10)), 0.0, rng)
        assert is_connected(list(range(10)), edges)

    def test_probability_one_gives_complete_graph(self, rng):
        edges = random_connected_edges(list(range(6)), 1.0, rng)
        assert len(edges) == 15
