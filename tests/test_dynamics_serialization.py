"""Tests for schedule / trace JSON serialization (record & replay)."""

import json

import pytest

from repro.adversaries import ScheduleAdversary
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.core.engine import run_execution
from repro.core.problem import single_source_problem
from repro.dynamics.generators import churn_schedule, static_path_schedule
from repro.dynamics.graph_sequence import DynamicGraphTrace
from repro.dynamics.serialization import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
    trace_to_schedule_json,
)
from repro.utils.validation import ConfigurationError


class TestScheduleRoundTrip:
    def test_json_round_trip_preserves_schedule(self):
        schedule = churn_schedule(8, 6, seed=1)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored == schedule

    def test_round_trip_preserves_topological_changes(self):
        schedule = churn_schedule(10, 12, churn_fraction=0.5, seed=2)
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored.topological_changes() == schedule.topological_changes()

    def test_json_is_valid_and_versioned(self):
        document = json.loads(schedule_to_json(static_path_schedule(5)))
        assert document["format"] == "repro.graph_schedule"
        assert document["version"] == 1
        assert document["nodes"] == [0, 1, 2, 3, 4]

    def test_rejects_malformed_json(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json("{not json")

    def test_rejects_wrong_format_marker(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json(json.dumps({"format": "something-else"}))

    def test_rejects_unknown_version(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json(
                json.dumps({"format": "repro.graph_schedule", "version": 99,
                            "nodes": [0, 1], "rounds": [[[0, 1]]]})
            )

    def test_rejects_missing_rounds(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json(
                json.dumps({"format": "repro.graph_schedule", "version": 1, "nodes": [0, 1]})
            )


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        schedule = churn_schedule(6, 5, seed=3)
        path = save_schedule(schedule, tmp_path / "schedule.json")
        assert path.exists()
        assert load_schedule(path) == schedule

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_schedule(tmp_path / "does-not-exist.json")


class TestTraceReplay:
    def test_empty_trace_cannot_be_serialized(self):
        with pytest.raises(ConfigurationError):
            trace_to_schedule_json(DynamicGraphTrace([0, 1]))

    def test_recorded_execution_can_be_replayed_identically(self):
        """Freeze an adaptive-looking run into a schedule and replay it."""
        problem = single_source_problem(8, 3)
        original = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(churn_schedule(8, 300, seed=4)),
            seed=4,
        )
        assert original.completed
        replay_schedule = schedule_from_json(trace_to_schedule_json(original.trace))
        replayed = run_execution(
            single_source_problem(8, 3),
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(replay_schedule),
            seed=4,
        )
        assert replayed.completed
        assert replayed.total_messages == original.total_messages
        assert replayed.rounds == original.rounds
        assert replayed.topological_changes == original.topological_changes
