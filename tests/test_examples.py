"""Smoke tests for the example scripts.

The full scripts run for tens of seconds; here we check that every example
module imports cleanly and exposes a ``main`` entry point, and we execute the
quickest entry points directly so regressions in the public API surface are
caught by the test suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = [
    "quickstart.py",
    "p2p_gossip.py",
    "sensor_stream.py",
    "adversarial_lower_bound.py",
    "results_warehouse.py",
    "backends_fast_path.py",
    "batch_sweeps.py",
    "tracing_runs.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_examples_directory_contains_expected_scripts(self):
        present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        for name in EXAMPLE_FILES:
            assert name in present

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_example_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None))


class TestQuickstartFunctions:
    def test_run_unicast_example_small(self, capsys):
        module = load_example("quickstart.py")
        module.run_unicast_example(num_nodes=8, num_tokens=10)
        captured = capsys.readouterr().out
        assert "Single-Source-Unicast" in captured
        assert "amortized" in captured

    def test_run_broadcast_example_small(self, capsys):
        module = load_example("quickstart.py")
        module.run_broadcast_example(num_nodes=8)
        captured = capsys.readouterr().out
        assert "flooding" in captured.lower()
        assert "free-edge" in captured
