"""Integration tests: whole-library scenarios that cross module boundaries.

These tests exercise the same pipelines as the benchmark harnesses, but at
smaller scale, and check the *shape* claims of the paper:

* the unicast algorithms solve dissemination correctly on every workload;
* flooding pays Θ(n²) amortized while the adversary-competitive unicast cost
  stays near-linear for large k;
* adversary-competitive accounting absorbs the cost caused by churn;
* the oblivious random-walk algorithm beats plain Multi-Source-Unicast on
  n-gossip instances.
"""

import pytest

from repro import (
    ControlledChurnAdversary,
    ExperimentRunner,
    FloodingAlgorithm,
    LowerBoundAdversary,
    MultiSourceUnicastAlgorithm,
    NaiveUnicastAlgorithm,
    ObliviousMultiSourceAlgorithm,
    PotentialTracker,
    RandomChurnObliviousAdversary,
    RequestCuttingAdversary,
    ScheduleAdversary,
    SingleSourceUnicastAlgorithm,
    SpanningTreeAlgorithm,
    Simulator,
    StaticAdversary,
    aggregate_records,
    fit_power_law,
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
    uniform_multi_source_problem,
    stabilize_schedule,
    churn_schedule,
    static_complete_schedule,
)
from repro.core.engine import run_execution
from tests.conftest import path_edges


class TestCrossAlgorithmCorrectness:
    """Every algorithm solves its intended problem class on shared workloads."""

    @pytest.mark.parametrize("make_algorithm", [
        SingleSourceUnicastAlgorithm,
        MultiSourceUnicastAlgorithm,
        NaiveUnicastAlgorithm,
        SpanningTreeAlgorithm,
    ])
    def test_unicast_algorithms_solve_single_source_on_static_graph(self, make_algorithm):
        problem = single_source_problem(9, 5)
        result = run_execution(
            problem, make_algorithm(), StaticAdversary(9, path_edges(9)), seed=1
        )
        assert result.completed
        result.verify_dissemination()

    @pytest.mark.parametrize("make_algorithm", [
        MultiSourceUnicastAlgorithm,
        NaiveUnicastAlgorithm,
        lambda: ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.3),
    ])
    def test_unicast_algorithms_solve_n_gossip_under_churn(self, make_algorithm):
        problem = n_gossip_problem(10)
        result = run_execution(
            problem, make_algorithm(), RandomChurnObliviousAdversary(edge_probability=0.35), seed=2
        )
        assert result.completed
        result.verify_dissemination()

    def test_flooding_solves_the_lower_bound_instance(self):
        problem = random_assignment_problem(12, 9, seed=3)
        adversary = LowerBoundAdversary()
        result = run_execution(problem, FloodingAlgorithm(), adversary, seed=3)
        assert result.completed
        tracker = PotentialTracker(problem, adversary.kprime_sets)
        trajectory = tracker.replay(result.events, result.rounds)
        assert trajectory.final == tracker.maximum_potential()


class TestShapeOfTheBounds:
    """Qualitative reproduction of the paper's headline comparisons."""

    def test_flooding_amortized_cost_scales_superlinearly_in_n(self):
        """E2/E9: amortized flooding cost against the worst-case adversary grows
        roughly like n² (we only check clearly-superlinear growth: exponent > 1.3)."""
        sizes = [8, 12, 16, 20]
        amortized = []
        for n in sizes:
            problem = random_assignment_problem(n, n, seed=n)
            result = run_execution(problem, FloodingAlgorithm(), LowerBoundAdversary(), seed=n)
            assert result.completed
            amortized.append(result.amortized_messages())
        exponent, _ = fit_power_law(sizes, amortized)
        assert exponent > 1.3

    def test_single_source_amortized_competitive_cost_scales_linearly(self):
        """E3: for k = 2n the adversary-competitive amortized cost of Algorithm 1
        grows roughly linearly in n (exponent well below 2)."""
        sizes = [8, 12, 16, 24]
        amortized = []
        for n in sizes:
            problem = single_source_problem(n, 2 * n)
            result = run_execution(
                problem,
                SingleSourceUnicastAlgorithm(),
                ControlledChurnAdversary(changes_per_round=3, edge_probability=0.3),
                seed=n,
            )
            assert result.completed
            amortized.append(max(1.0, result.amortized_adversary_competitive_messages()))
        exponent, _ = fit_power_law(sizes, amortized)
        assert exponent < 1.6

    def test_unicast_beats_flooding_for_large_k(self):
        """The headline comparison: for k = Ω(n) the unicast algorithm's
        adversary-competitive amortized cost is far below flooding's Θ(n²)."""
        n, k = 14, 28
        flooding_problem = single_source_problem(n, k)
        flood = run_execution(
            flooding_problem, FloodingAlgorithm(), LowerBoundAdversary(), seed=4
        )
        unicast = run_execution(
            single_source_problem(n, k),
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=4, edge_probability=0.3),
            seed=4,
        )
        assert flood.completed and unicast.completed
        assert (
            unicast.amortized_adversary_competitive_messages()
            < flood.amortized_messages() / 4
        )

    def test_churn_cost_is_absorbed_by_the_adversary_budget(self):
        """E10: raising the churn budget raises the raw message count of
        Algorithm 1 but the adversary-competitive cost stays within the same
        O(n² + nk) envelope."""
        n, k = 12, 12
        costs = {}
        for budget in (0, 4, 12):
            result = run_execution(
                single_source_problem(n, k),
                SingleSourceUnicastAlgorithm(),
                ControlledChurnAdversary(changes_per_round=budget, edge_probability=0.3),
                seed=5,
            )
            assert result.completed
            costs[budget] = result
        assert costs[12].total_messages >= costs[0].total_messages
        envelope = 3 * (n * n + n * k)
        for result in costs.values():
            assert result.adversary_competitive_messages() <= envelope

    def test_oblivious_algorithm_beats_multi_source_on_n_gossip(self):
        """E6: with many sources, the random-walk source reduction lowers the
        total message count relative to plain Multi-Source-Unicast."""
        n = 16
        problem = n_gossip_problem(n)
        adversary = lambda: ScheduleAdversary(static_complete_schedule(n))
        plain = run_execution(problem, MultiSourceUnicastAlgorithm(), adversary(), seed=6)
        walks = run_execution(
            problem,
            ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.15),
            adversary(),
            seed=6,
        )
        assert plain.completed and walks.completed
        assert walks.total_messages < plain.total_messages

    def test_static_spanning_tree_amortized_cost_near_linear_for_large_k(self):
        """E8: the static baseline achieves O(n²/k + n) amortized messages."""
        n, k = 12, 48
        problem = single_source_problem(n, k)
        result = run_execution(
            problem, SpanningTreeAlgorithm(), ScheduleAdversary(static_complete_schedule(n)), seed=7
        )
        assert result.completed
        assert result.amortized_messages() <= 4 * n


class TestExperimentPipeline:
    def test_sweep_aggregation_round_trip(self):
        runner = ExperimentRunner(base_seed=11)

        def build(config):
            n = config["n"]
            return (
                lambda: single_source_problem(n, n),
                lambda: SingleSourceUnicastAlgorithm(),
                lambda: ControlledChurnAdversary(changes_per_round=2, edge_probability=0.35),
            )

        records = runner.sweep([{"n": 8}, {"n": 12}], build, repetitions=2)
        rows = aggregate_records(records, group_by=["n"])
        assert [row["n"] for row in rows] == [8, 12]
        assert all(row["completed"] for row in rows)
        assert rows[1]["total_messages"] > rows[0]["total_messages"]

    def test_simulator_is_reusable_across_configurations(self):
        problem = uniform_multi_source_problem(10, 3, 9, seed=8)
        schedule = stabilize_schedule(churn_schedule(10, 500, churn_fraction=0.3, seed=8), 3)
        result = Simulator(
            problem,
            MultiSourceUnicastAlgorithm(),
            ScheduleAdversary(schedule),
            seed=8,
        ).run()
        assert result.completed
        assert result.topological_changes == schedule.topological_changes(result.rounds)

    def test_request_cutting_adversary_inflates_tc_not_competitive_cost(self):
        n, k = 10, 10
        problem = single_source_problem(n, k)
        cut = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            RequestCuttingAdversary(cut_fraction=0.7, edge_probability=0.3),
            seed=9,
        )
        calm = run_execution(
            single_source_problem(n, k),
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=0, edge_probability=0.3),
            seed=9,
        )
        assert cut.completed and calm.completed
        assert cut.topological_changes > calm.topological_changes
        envelope = 3 * (n * n + n * k)
        assert cut.adversary_competitive_messages() <= envelope
