"""Unit tests for repro.utils.rng."""

import random

import pytest

from repro.utils.rng import (
    derive_seed,
    ensure_rng,
    random_subset,
    sample_without_replacement,
    shuffled,
    spawn_rng,
    weighted_choice,
)


class TestEnsureRng:
    def test_none_returns_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_integer_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_distinct_seeds_give_distinct_streams(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_generator_is_returned_unchanged(self):
        generator = random.Random(7)
        assert ensure_rng(generator) is generator

    def test_rejects_float_seed(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)

    def test_rejects_bool_seed(self):
        with pytest.raises(TypeError):
            ensure_rng(True)


class TestSpawnRng:
    def test_child_is_independent_instance(self):
        parent = random.Random(3)
        child = spawn_rng(parent, "child")
        assert child is not parent

    def test_same_parent_state_and_label_is_reproducible(self):
        child_a = spawn_rng(random.Random(3), "x")
        child_b = spawn_rng(random.Random(3), "x")
        assert child_a.random() == child_b.random()

    def test_different_labels_decorrelate(self):
        child_a = spawn_rng(random.Random(3), "a")
        child_b = spawn_rng(random.Random(3), "b")
        assert child_a.random() != child_b.random()


class TestRandomSubset:
    def test_probability_zero_selects_nothing(self, rng):
        assert random_subset(rng, list(range(100)), 0.0) == []

    def test_probability_one_selects_everything(self, rng):
        items = list(range(50))
        assert random_subset(rng, items, 1.0) == items

    def test_invalid_probability_raises(self, rng):
        with pytest.raises(ValueError):
            random_subset(rng, [1, 2, 3], 1.5)

    def test_subset_is_subsequence_of_items(self, rng):
        items = list(range(30))
        subset = random_subset(rng, items, 0.5)
        assert all(item in items for item in subset)
        assert subset == sorted(subset)


class TestSampleWithoutReplacement:
    def test_count_larger_than_population_returns_all(self, rng):
        assert sorted(sample_without_replacement(rng, [1, 2, 3], 10)) == [1, 2, 3]

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1, 2], -1)

    def test_samples_are_distinct(self, rng):
        sample = sample_without_replacement(rng, list(range(20)), 10)
        assert len(sample) == len(set(sample)) == 10


class TestShuffled:
    def test_does_not_mutate_input(self, rng):
        items = [1, 2, 3, 4, 5]
        shuffled(rng, items)
        assert items == [1, 2, 3, 4, 5]

    def test_is_permutation(self, rng):
        items = list(range(10))
        assert sorted(shuffled(rng, items)) == items


class TestWeightedChoice:
    def test_single_positive_weight_always_chosen(self, rng):
        assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.5, 0.5])

    def test_empty_items_raise(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])

    def test_zero_total_weight_raises(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])

    def test_distribution_roughly_respects_weights(self):
        generator = random.Random(0)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(generator, ["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > counts["b"]


class TestDeriveSeed:
    def test_is_deterministic(self):
        assert derive_seed(5, "x", 1) == derive_seed(5, "x", 1)

    def test_depends_on_labels(self):
        assert derive_seed(5, "x") != derive_seed(5, "y")

    def test_none_base_seed_is_supported(self):
        assert isinstance(derive_seed(None, "x"), int)
