"""Tests of the top-level public API surface."""

import importlib
import json
import pathlib

import pytest

import repro
import repro.api

#: The checked-in snapshot of the curated public surface.  If you change
#: ``repro.__all__`` or ``repro.api.__all__`` on purpose, regenerate it:
#:   PYTHONPATH=src python -c "import json, repro, repro.api; print(json.dumps(
#:       {'repro': sorted(repro.__all__),
#:        'repro.api': sorted(repro.api.__all__)}, indent=2))" \
#:     > tests/data/public_api_surface.json
SNAPSHOT_PATH = pathlib.Path(__file__).parent / "data" / "public_api_surface.json"


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_key_entry_points_present(self):
        for name in (
            "Simulator",
            "single_source_problem",
            "multi_source_problem",
            "n_gossip_problem",
            "SingleSourceUnicastAlgorithm",
            "MultiSourceUnicastAlgorithm",
            "ObliviousMultiSourceAlgorithm",
            "FloodingAlgorithm",
            "LowerBoundAdversary",
            "ControlledChurnAdversary",
            "render_table1",
            "table1_rows",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.dynamics",
            "repro.adversaries",
            "repro.algorithms",
            "repro.analysis",
            "repro.backends",
            "repro.utils",
        ):
            assert importlib.import_module(module) is not None

    def test_docstring_mentions_the_paper(self):
        assert "Dynamic Networks" in repro.__doc__

    def test_end_to_end_through_public_names_only(self):
        problem = repro.single_source_problem(6, 3)
        result = repro.Simulator(
            problem,
            repro.SingleSourceUnicastAlgorithm(),
            repro.ControlledChurnAdversary(changes_per_round=1, edge_probability=0.4),
            seed=1,
        ).run()
        assert result.completed
        assert result.amortized_messages() > 0
        assert isinstance(repro.render_table1(64), str)

    def test_schedule_serialization_exposed(self):
        schedule = repro.static_path_schedule(4)
        restored = repro.schedule_from_json(repro.schedule_to_json(schedule))
        assert restored == schedule

    def test_error_hierarchy_is_public_and_unified(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.ExperimentError, repro.ReproError)
        from repro.results import RecordValidationError

        assert issubclass(RecordValidationError, repro.ReproError)

    def test_fluent_api_is_exported_at_the_top_level(self):
        for name in ("Experiment", "ExperimentPlan", "RunSet", "Aggregate",
                     "Comparison", "load_runs"):
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(repro.api, name)


class TestPublicApiSnapshot:
    """The curated surface is pinned: changing it requires updating the
    snapshot file (see SNAPSHOT_PATH's docstring for the one-liner), which
    makes accidental API growth or breakage visible in review and CI."""

    def snapshot(self):
        return json.loads(SNAPSHOT_PATH.read_text())

    def test_api_module_all_names_resolve(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name)

    def test_top_level_surface_matches_the_snapshot(self):
        assert sorted(repro.__all__) == self.snapshot()["repro"], (
            "repro.__all__ changed; if intentional, regenerate "
            f"{SNAPSHOT_PATH} (see its docstring)"
        )

    def test_api_surface_matches_the_snapshot(self):
        assert sorted(repro.api.__all__) == self.snapshot()["repro.api"], (
            "repro.api.__all__ changed; if intentional, regenerate "
            f"{SNAPSHOT_PATH} (see its docstring)"
        )

    def test_all_lists_are_duplicate_free(self):
        assert len(repro.__all__) == len(set(repro.__all__))
        assert len(repro.api.__all__) == len(set(repro.api.__all__))


class TestTyping:
    def test_py_typed_marker_ships_with_the_package(self):
        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists(), (
            "src/repro/py.typed is the PEP 561 marker telling type-checkers "
            "to read the package's inline annotations"
        )

    def test_packaging_declares_the_marker(self):
        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        assert pyproject.exists()
        assert "py.typed" in pyproject.read_text()
