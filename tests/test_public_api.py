"""Tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_key_entry_points_present(self):
        for name in (
            "Simulator",
            "single_source_problem",
            "multi_source_problem",
            "n_gossip_problem",
            "SingleSourceUnicastAlgorithm",
            "MultiSourceUnicastAlgorithm",
            "ObliviousMultiSourceAlgorithm",
            "FloodingAlgorithm",
            "LowerBoundAdversary",
            "ControlledChurnAdversary",
            "render_table1",
            "table1_rows",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.dynamics",
            "repro.adversaries",
            "repro.algorithms",
            "repro.analysis",
            "repro.backends",
            "repro.utils",
        ):
            assert importlib.import_module(module) is not None

    def test_docstring_mentions_the_paper(self):
        assert "Dynamic Networks" in repro.__doc__

    def test_end_to_end_through_public_names_only(self):
        problem = repro.single_source_problem(6, 3)
        result = repro.Simulator(
            problem,
            repro.SingleSourceUnicastAlgorithm(),
            repro.ControlledChurnAdversary(changes_per_round=1, edge_probability=0.4),
            seed=1,
        ).run()
        assert result.completed
        assert result.amortized_messages() > 0
        assert isinstance(repro.render_table1(64), str)

    def test_schedule_serialization_exposed(self):
        schedule = repro.static_path_schedule(4)
        restored = repro.schedule_from_json(repro.schedule_to_json(schedule))
        assert restored == schedule
