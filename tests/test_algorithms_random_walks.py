"""Tests for the random-walk machinery of Algorithm 2 (phase 1)."""

import math
import random

import pytest

from repro.algorithms.random_walks import (
    RandomWalkDisseminator,
    default_degree_threshold,
    default_num_centers,
    phase_one_round_budget,
    source_count_threshold,
    WalkStep,
)
from repro.core.tokens import Token, make_tokens
from repro.utils.validation import ConfigurationError


def full_neighbors(num_nodes):
    nodes = list(range(num_nodes))
    return {u: frozenset(v for v in nodes if v != u) for u in nodes}


class TestParameterFormulas:
    def test_degree_threshold_positive_and_growing_in_n(self):
        assert default_degree_threshold(100, 10) > default_degree_threshold(25, 10)
        assert default_degree_threshold(10, 10) >= 1.0

    def test_degree_threshold_decreases_with_k(self):
        assert default_degree_threshold(400, 100) <= default_degree_threshold(400, 10)

    def test_num_centers_sublinear_for_large_n(self):
        # f = √n k^(1/4) log^(5/4) n is o(n) for k = n; the log factor means
        # the ratio f/n only drops below 1 for very large n, but it must be
        # strictly decreasing in n.
        small_ratio = default_num_centers(10**6, 10**6) / 10**6
        large_ratio = default_num_centers(10**9, 10**9) / 10**9
        assert large_ratio < small_ratio
        assert default_num_centers(10**9, 10**9) < 10**9

    def test_phase_one_budget_is_superlinear(self):
        assert phase_one_round_budget(50, 50) > 50**2

    def test_source_threshold_between_n23_and_n(self):
        n = 10_000
        threshold = source_count_threshold(n)
        assert n ** (2 / 3) <= threshold
        assert threshold < n * math.log2(n) ** 2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            default_degree_threshold(0, 5)
        with pytest.raises(ConfigurationError):
            default_num_centers(5, 0)
        with pytest.raises(ConfigurationError):
            phase_one_round_budget(0, 1)
        with pytest.raises(ConfigurationError):
            source_count_threshold(0)


class TestDisseminatorSetup:
    def test_tokens_starting_on_centers_are_owned_immediately(self):
        tokens = make_tokens(0, 2)
        walker = RandomWalkDisseminator(
            nodes=range(5),
            centers=[0],
            token_positions={tokens[0]: 0, tokens[1]: 3},
            degree_threshold=2.0,
            rng=random.Random(0),
        )
        assert walker.owner_of(tokens[0]) == 0
        assert walker.owner_of(tokens[1]) is None
        assert walker.walking_tokens() == [tokens[1]]

    def test_requires_at_least_one_center(self):
        with pytest.raises(ConfigurationError):
            RandomWalkDisseminator(range(4), [], {}, 2.0, random.Random(0))

    def test_rejects_center_outside_node_set(self):
        with pytest.raises(ConfigurationError):
            RandomWalkDisseminator(range(4), [9], {}, 2.0, random.Random(0))

    def test_rejects_token_at_unknown_node(self):
        token = Token(0, 1)
        with pytest.raises(ConfigurationError):
            RandomWalkDisseminator(range(4), [0], {token: 7}, 2.0, random.Random(0))


class TestRoundPlanning:
    def test_high_degree_node_hands_tokens_to_neighbouring_centers(self):
        tokens = make_tokens(2, 3)
        walker = RandomWalkDisseminator(
            nodes=range(6),
            centers=[0, 1],
            token_positions={token: 2 for token in tokens},
            degree_threshold=2.0,  # degree 5 >= 2 -> node 2 is high degree
            rng=random.Random(1),
        )
        steps = walker.plan_round(full_neighbors(6))
        receivers = {step.receiver for step in steps}
        assert receivers <= {0, 1}
        assert len(steps) == 2  # one token per neighbouring center

    def test_low_degree_node_respects_congestion(self):
        tokens = make_tokens(1, 5)
        neighbors = {0: frozenset({1}), 1: frozenset({0, 2}), 2: frozenset({1})}
        walker = RandomWalkDisseminator(
            nodes=range(3),
            centers=[0],
            token_positions={token: 1 for token in tokens},
            degree_threshold=100.0,  # everyone is low degree
            rng=random.Random(2),
        )
        steps = walker.plan_round(neighbors)
        # Node 1 has two incident edges, so at most two tokens may move.
        assert len(steps) <= 2
        per_edge = {}
        for step in steps:
            per_edge[(step.sender, step.receiver)] = per_edge.get((step.sender, step.receiver), 0) + 1
        assert all(count == 1 for count in per_edge.values())

    def test_apply_step_moves_token_and_stops_at_center(self):
        token = Token(3, 1)
        walker = RandomWalkDisseminator(
            nodes=range(4),
            centers=[0],
            token_positions={token: 2},
            degree_threshold=10.0,
            rng=random.Random(3),
        )
        walker.apply_step(WalkStep(token=token, sender=2, receiver=3))
        assert walker.position_of(token) == 3
        assert walker.owner_of(token) is None
        walker.apply_step(WalkStep(token=token, sender=3, receiver=0))
        assert walker.owner_of(token) == 0
        assert walker.all_delivered()
        assert walker.actual_steps == 2

    def test_apply_step_validates_sender_position(self):
        token = Token(3, 1)
        walker = RandomWalkDisseminator(
            nodes=range(4), centers=[0], token_positions={token: 2},
            degree_threshold=10.0, rng=random.Random(4),
        )
        with pytest.raises(ConfigurationError):
            walker.apply_step(WalkStep(token=token, sender=1, receiver=0))

    def test_apply_step_rejects_delivered_token(self):
        token = Token(3, 1)
        walker = RandomWalkDisseminator(
            nodes=range(4), centers=[0], token_positions={token: 0},
            degree_threshold=10.0, rng=random.Random(5),
        )
        with pytest.raises(ConfigurationError):
            walker.apply_step(WalkStep(token=token, sender=0, receiver=1))


class TestWalkConvergence:
    def test_all_tokens_eventually_reach_centers_on_complete_graph(self):
        tokens = [Token(source, 1) for source in range(1, 8)]
        walker = RandomWalkDisseminator(
            nodes=range(8),
            centers=[0],
            token_positions={token: token.source for token in tokens},
            degree_threshold=3.0,
            rng=random.Random(6),
        )
        neighbors = full_neighbors(8)
        for _ in range(200):
            if walker.all_delivered():
                break
            for step in walker.plan_round(neighbors):
                walker.apply_step(step)
        assert walker.all_delivered()
        assert set(walker.ownership()) == {0}

    def test_force_delivery_promotes_holders(self):
        tokens = make_tokens(1, 2)
        walker = RandomWalkDisseminator(
            nodes=range(5),
            centers=[0],
            token_positions={tokens[0]: 2, tokens[1]: 3},
            degree_threshold=10.0,
            rng=random.Random(7),
        )
        ownership = walker.force_delivery_in_place()
        assert walker.all_delivered()
        assert ownership[2] == [tokens[0]]
        assert ownership[3] == [tokens[1]]
        assert {2, 3} <= set(walker.centers)
