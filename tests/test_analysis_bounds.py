"""Tests for the closed-form bound evaluations (Theorems and Table 1)."""

import math

import pytest

from repro.analysis.bounds import (
    flooding_amortized_upper_bound,
    local_broadcast_lower_bound,
    log2n,
    multi_source_amortized_bound,
    multi_source_competitive_bound,
    naive_unicast_amortized_upper_bound,
    oblivious_amortized_bound,
    oblivious_total_message_bound,
    single_source_competitive_bound,
    single_source_round_bound,
    static_spanning_tree_amortized,
    static_spanning_tree_total,
    table1_amortized_bound,
    table1_paper_expressions,
    table1_rows,
)
from repro.utils.validation import ConfigurationError


class TestLog2n:
    def test_clamped_below_by_one(self):
        assert log2n(1) == 1.0
        assert log2n(2) == 1.0

    def test_matches_log2_for_larger_n(self):
        assert log2n(1024) == pytest.approx(10.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            log2n(0)


class TestLocalBroadcastBounds:
    def test_flooding_upper_is_n_squared(self):
        assert flooding_amortized_upper_bound(50) == 2500

    def test_lower_bound_below_upper_bound(self):
        for n in (16, 64, 256, 1024):
            assert local_broadcast_lower_bound(n) <= flooding_amortized_upper_bound(n)

    def test_lower_bound_scales_almost_quadratically(self):
        ratio = local_broadcast_lower_bound(1 << 14) / local_broadcast_lower_bound(1 << 7)
        # n²/log²n grows by 2^14 / (14/7)² = 4096 when n doubles 7 times.
        assert ratio == pytest.approx((2**7) ** 2 / 4, rel=0.01)


class TestStaticBaseline:
    def test_total_is_n_squared_plus_nk(self):
        assert static_spanning_tree_total(10, 20) == 100 + 200

    def test_amortized_approaches_n_for_large_k(self):
        n = 64
        assert static_spanning_tree_amortized(n, n * n) == pytest.approx(n + 1)

    def test_naive_unicast_upper(self):
        assert naive_unicast_amortized_upper_bound(9) == 81


class TestCompetitiveBounds:
    def test_single_source_bound(self):
        assert single_source_competitive_bound(10, 5) == 100 + 50

    def test_single_source_round_bound(self):
        assert single_source_round_bound(10, 5) == 50

    def test_multi_source_bound(self):
        assert multi_source_competitive_bound(10, 5, 3) == 300 + 50

    def test_multi_source_amortized(self):
        assert multi_source_amortized_bound(10, 5, 3) == pytest.approx(70.0)

    def test_multi_source_reduces_to_single_source_for_one_source(self):
        assert multi_source_competitive_bound(20, 7, 1) == single_source_competitive_bound(20, 7)


class TestObliviousBounds:
    def test_total_bound_value(self):
        n, k = 256, 256
        expected = n**2.5 * k**0.25 * log2n(n) ** 1.25
        assert oblivious_total_message_bound(n, k) == pytest.approx(expected)

    def test_amortized_decreases_in_k(self):
        n = 1024
        values = [oblivious_amortized_bound(n, k) for k in (n, n * 4, n * 16)]
        assert values[0] > values[1] > values[2]

    def test_subquadratic_for_k_equal_n_at_large_n(self):
        # The O(n^(7/4) log^(5/4) n) bound for k = n drops below n² once
        # n^(1/4) exceeds log^(5/4) n, i.e. for n beyond a few million.
        n = 1 << 25
        assert oblivious_amortized_bound(n, n) < n**2


class TestTable1:
    def test_four_rows(self):
        rows = table1_rows(4096)
        assert len(rows) == 4
        labels = [row.label for row in rows]
        assert labels[0].startswith("k = n^(2/3)")
        assert labels[-1] == "k = n^2"

    def test_rows_monotonically_cheaper_with_more_tokens(self):
        rows = table1_rows(1 << 30)
        bounds = [row.amortized_bound for row in rows]
        # More tokens always means a (weakly) cheaper amortized cost; allow a
        # tiny tolerance for the integer rounding of the k regimes.
        for previous, current in zip(bounds, bounds[1:]):
            assert current <= previous * 1.000001

    def test_bound_capped_at_n_squared(self):
        n = 64
        for row in table1_rows(n):
            assert row.amortized_bound <= n * n

    def test_k_n2_row_is_near_linear(self):
        n = 1 << 16
        row = next(r for r in table1_rows(n) if r.label == "k = n^2")
        # O(n log^(5/4) n): within a polylog factor of n.
        assert row.amortized_bound < n * log2n(n) ** 2

    def test_evaluated_bounds_track_paper_expressions(self):
        """For large n the evaluated Theorem 3.8 bound matches the closed-form
        Table 1 expressions up to a constant (they are the same formula)."""
        n = 1 << 18
        paper = table1_paper_expressions(n)
        rows = {row.label: row for row in table1_rows(n)}
        for label in ("k = n", "k = n^(3/2)"):
            evaluated = rows[label].amortized_bound
            expected = paper[label]
            assert 0.1 <= evaluated / expected <= 10.0

    def test_table1_amortized_bound_direct(self):
        n = 256
        assert table1_amortized_bound(n, n * n) <= table1_amortized_bound(n, n)
