"""Tests for the experiment service (``repro.service``).

The in-process tests embed an :class:`ExperimentServer` on a background
thread with ``workers=0`` (inline thread executor), which exercises the
full submit → coalesce → execute → persist → stream path without forking.
The crash-resume test runs the real daemon in a subprocess and SIGKILLs
it mid-run.
"""

from __future__ import annotations

import asyncio
import io
import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import execute_cell_payload, execute_group_payload
from repro.obs.events import (
    CellCached,
    CellCompleted,
    CellStarted,
    ProgressPrinter,
    RunFinished,
)
from repro.results.store import RunStore
from repro.scenarios import ScenarioSpec, run_spec
from repro.service import (
    ExperimentServer,
    ProtocolError,
    ServiceClient,
    connect_with_retry,
    decode_frame,
    encode_frame,
)
from repro.service.client import ServiceError
from repro.service.scheduler import Scheduler, ShuttingDownError
from repro.service.workers import WorkerPool
from repro.utils.validation import ConfigurationError


def sweep_specs(num_nodes=(6, 8), repetitions=2, **overrides):
    """A small vectorizable sweep: one spec per node count."""
    specs = []
    for n in num_nodes:
        fields = dict(
            problem="single-source",
            problem_params={"num_nodes": n, "num_tokens": 4},
            algorithm="flooding",
            algorithm_params={"rounds_per_token": 2},
            adversary="static-random",
            adversary_params={"num_nodes": n},
            seed=11,
            repetitions=repetitions,
            name="service-test",
        )
        fields.update(overrides)
        specs.append(ScenarioSpec(**fields))
    return specs


class ServerHandle:
    """An embedded daemon on a background thread, torn down via shutdown."""

    def __init__(self, tmp_path: Path, **kwargs) -> None:
        self.store = str(tmp_path / "store")
        self.socket_path = str(tmp_path / "service.sock")
        kwargs.setdefault("workers", 0)
        self.server = ExperimentServer(
            self.store,
            socket=self.socket_path,
            stream=io.StringIO(),
            **kwargs,
        )
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        self.exit_code = self.server.run()

    def client(self, **kwargs) -> ServiceClient:
        return connect_with_retry(socket_path=self.socket_path, **kwargs)

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                with self.client() as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(tmp_path)
    try:
        yield handle
    finally:
        handle.stop()


class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"op": "ping", "nested": {"a": [1, 2]}}
        encoded = encode_frame(frame)
        assert encoded.endswith(b"\n")
        assert decode_frame(encoded) == frame

    def test_decode_rejects_malformed_frames(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b"[1, 2]\n")
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_frame(b"\xff\xfe\n")


class TestWorkerPool:
    def test_rejects_negative_and_non_int_workers(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            WorkerPool(-1)
        with pytest.raises(ConfigurationError, match="non-negative"):
            WorkerPool(True)


class TestSubmitRoundTrip:
    def test_submit_stream_results_round_trip(self, server):
        specs = sweep_specs()
        expected = [record for spec in specs for record in run_spec(spec)]
        with server.client() as client:
            ack = client.submit(specs, watch=True)
            assert ack["pending"] == len(expected)
            assert ack["cached"] == 0
            events = list(client.events())
            records = client.results(ack["job"])

        started = [e for e in events if isinstance(e, CellStarted)]
        completed = [e for e in events if isinstance(e, CellCompleted)]
        assert len(started) == len(expected)
        assert len(completed) == len(expected)
        assert isinstance(events[-1], RunFinished)
        assert events[-1].executed == len(expected)
        # The daemon's records are identical to running the specs directly.
        assert records == expected
        # Events stream in plan order.
        assert [e.index for e in started] == sorted(e.index for e in started)

    def test_progress_printer_renders_streamed_events(self, server):
        stream = io.StringIO()  # isatty() is False
        printer = ProgressPrinter(stream, label="submit")
        with server.client() as client:
            client.submit(sweep_specs(num_nodes=(6,)), watch=True)
            for event in client.events():
                printer.render(event)
        output = stream.getvalue()
        assert output.count("\n") == 1
        assert "progress: submit finished" in output

    def test_second_identical_submit_is_fully_cached(self, server):
        specs = sweep_specs()
        with server.client() as client:
            first = client.submit(specs, watch=True)
            list(client.events())
            records_first = client.results(first["job"])

            second = client.submit(specs, watch=True)
            assert second["pending"] == 0
            assert second["cached"] == first["pending"]
            events = list(client.events())
            records_second = client.results(second["job"])

        body = [e for e in events if not isinstance(e, RunFinished)]
        assert body and all(isinstance(e, CellCached) for e in body)
        assert events[-1].executed == 0
        # Byte-identical records: nothing re-executed, nothing re-derived.
        assert json.dumps(records_first) == json.dumps(records_second)

    def test_status_reports_jobs(self, server):
        specs = sweep_specs(num_nodes=(6,))
        with server.client() as client:
            ack = client.submit(specs, watch=True)
            list(client.events())
            jobs = client.status()
            assert [job["job"] for job in jobs] == [ack["job"]]
            only = client.status(ack["job"])[0]
            assert only["state"] == "done"
            assert only["executed"] == ack["pending"]


class GatedPool:
    """A worker pool whose executions block until the test opens the gate."""

    def __init__(self) -> None:
        self.gate = asyncio.Event()
        self.calls = []

    async def run(self, payload):
        await self.gate.wait()
        self.calls.append(payload)
        return execute_cell_payload(payload)

    async def run_group(self, payload):
        await self.gate.wait()
        self.calls.append(payload)
        return execute_group_payload(payload)

    @property
    def executed_cells(self) -> int:
        """Physical cells run so far, across single and group payloads."""
        return sum(
            len(reps) if isinstance(reps, tuple) else 1
            for _, reps, _, _ in self.calls
        )

    def shutdown(self, wait: bool = True) -> None:
        pass


class TestSchedulerCoalescing:
    def test_second_job_coalesces_onto_in_flight_executions(self, tmp_path):
        async def scenario():
            pool = GatedPool()
            scheduler = Scheduler(str(tmp_path / "store"), pool)
            specs = sweep_specs()
            # Both submissions land before any execution resolves (claims
            # are taken synchronously at submit time), so every cell of the
            # second job must attach to the first job's executions.
            job_a = scheduler.submit(specs)
            job_b = scheduler.submit(specs)
            pool.gate.set()
            await scheduler.drain()
            return pool, job_a, job_b

        pool, job_a, job_b = asyncio.run(scenario())
        cells = len(job_a.plan.cells)
        assert job_a.state == "done" and job_b.state == "done"
        assert job_a.executed == cells
        assert job_b.executed == 0
        assert job_b.coalesced == cells
        # Each physical cell ran exactly once (vectorizable specs travel as
        # one group payload per spec, so call count < cell count).
        assert pool.executed_cells == cells
        assert len(pool.calls) == len(job_a.plan.specs())
        assert json.dumps(job_a.records) == json.dumps(job_b.records)
        # The coalesced job streams CellCached for every cell.
        kinds = [event["event"] for event in job_b.events]
        assert kinds == ["cell_cached"] * cells + ["run_finished"]

    def test_draining_scheduler_rejects_submissions(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(str(tmp_path / "store"), GatedPool())
            scheduler.draining = True
            with pytest.raises(ShuttingDownError):
                scheduler.submit(sweep_specs())

        asyncio.run(scenario())


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_jobs_and_exits_zero(self, tmp_path):
        handle = ServerHandle(tmp_path)
        specs = sweep_specs()
        try:
            with handle.client() as client:
                ack = client.submit(specs)  # no watch: returns immediately
                reply = client.shutdown()
                assert reply["ok"] is True
        finally:
            handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()
        assert handle.exit_code == 0
        # The in-flight job drained: every cell's record was persisted.
        store = RunStore(handle.store)
        assert len(store.records()) == ack["pending"]
        assert not os.path.exists(handle.socket_path)


class TestProtocolErrors:
    def test_errors_are_typed_and_keep_the_connection_open(self, server):
        with server.client() as client:
            raw = client._file

            def roundtrip(line: bytes):
                raw.write(line)
                raw.flush()
                return decode_frame(raw.readline())

            garbage = roundtrip(b"this is not json\n")
            assert garbage["ok"] is False
            assert garbage["error"]["kind"] == "protocol"

            unknown_op = roundtrip(encode_frame({"op": "frobnicate"}))
            assert unknown_op["error"]["kind"] == "protocol"

            unknown_job = roundtrip(encode_frame({"op": "results", "job": "job-9999"}))
            assert unknown_job["error"]["kind"] == "unknown-job"

            bad_submit = roundtrip(encode_frame({"op": "submit", "specs": []}))
            assert bad_submit["error"]["kind"] == "protocol"

            bad_spec = roundtrip(
                encode_frame({"op": "submit", "specs": [{"problem": "no-such"}]})
            )
            assert bad_spec["error"]["kind"] == "protocol"
            assert "invalid spec" in bad_spec["error"]["message"]

            # The connection survived all five errors.
            assert client.ping()["ok"] is True

    def test_results_before_done_is_a_configuration_error(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.results("job-0001")
            assert excinfo.value.kind == "unknown-job"


class TestCrashResume:
    NODES = (24, 28, 32, 36)

    def _start_daemon(self, store, sock):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", store, "--socket", sock, "--workers", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = process.stdout.readline()
        assert "listening" in line, line
        return process

    def test_sigkill_restart_resubmit_executes_only_missing_cells(self, tmp_path):
        store = str(tmp_path / "store")
        sock = str(tmp_path / "daemon.sock")
        # Larger cells (k=12) so the kill lands mid-run.
        specs = [
            ScenarioSpec(
                problem="single-source",
                problem_params={"num_nodes": n, "num_tokens": 12},
                algorithm="flooding",
                algorithm_params={"rounds_per_token": 2},
                adversary="static-random",
                adversary_params={"num_nodes": n},
                seed=11,
                repetitions=2,
                name="service-crash-test",
            )
            for n in self.NODES
        ]
        total = sum(spec.repetitions for spec in specs)

        daemon = self._start_daemon(store, sock)
        try:
            client = connect_with_retry(socket_path=sock, timeout=120)
            client.submit(specs, watch=True)
            # Kill -9 as soon as the first record lands.
            for event in client.events():
                if isinstance(event, CellCompleted):
                    daemon.send_signal(signal.SIGKILL)
                    break
            with pytest.raises((ServiceError, OSError)):
                for _ in client.events():
                    pass
            client.close()
        finally:
            daemon.kill()
            daemon.wait(timeout=30)

        persisted = len(RunStore(store).records())
        assert 1 <= persisted < total
        assert os.path.exists(sock)  # kill -9 left the socket behind

        daemon = self._start_daemon(store, sock)  # unlinks the stale socket
        try:
            with connect_with_retry(socket_path=sock, timeout=120) as client:
                ack = client.submit(specs, watch=True)
                assert ack["cached"] == persisted
                assert ack["pending"] == total - persisted
                events = list(client.events())
                records = client.results(ack["job"])
            started = [e for e in events if isinstance(e, CellStarted)]
            # Only the unfinished cells executed; nothing ran twice.
            assert len(started) == total - persisted
            assert len(records) == total
            # Every record is a full result row, whether or not the round
            # cap let the cell complete dissemination.
            assert all("completed" in record for record in records)
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            daemon.wait(timeout=30)
            assert daemon.returncode == 0


def _append_records_worker(store_path, lines, start):
    store = RunStore(store_path)
    for offset, line in enumerate(lines):
        record = json.loads(line)
        record["repetition"] = start + offset
        # One add per record: maximal manifest churn and interleaving.
        store.add([record], replace=True)


class TestStoreMultiWriter:
    def test_two_processes_append_to_one_shard_without_corruption(self, tmp_path):
        store_path = str(tmp_path / "store")
        [spec] = sweep_specs(num_nodes=(6,), repetitions=1)
        template = json.dumps(run_spec(spec)[0])
        per_writer = 20
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(
                target=_append_records_worker,
                args=(store_path, [template] * per_writer, start),
            )
            for start in (0, per_writer)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        # Reopen: every line parses, every identity is present exactly once.
        records = RunStore(store_path).records()
        assert sorted(record.repetition for record in records) == list(
            range(2 * per_writer)
        )

    def test_concurrent_appends_with_live_index_sync_converge(self, tmp_path):
        """Two processes append while a third syncs the warehouse index:
        whatever the interleaving, a final sync must land on exactly the
        rows a cold rebuild derives from the shards."""
        pytest.importorskip("sqlite3")
        from repro.warehouse import WarehouseIndex, rebuild_index

        store_path = str(tmp_path / "store")
        RunStore(store_path)  # writers and the syncer race on a live store
        index = WarehouseIndex(store_path)
        [spec] = sweep_specs(num_nodes=(6,), repetitions=1)
        template = json.dumps(run_spec(spec)[0])
        per_writer = 20
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(
                target=_append_records_worker,
                args=(store_path, [template] * per_writer, start),
            )
            for start in (0, per_writer)
        ]
        for writer in writers:
            writer.start()
        # Sync concurrently with the appends: every intermediate sync must
        # succeed (shard stat + read happen under the store's writer lock),
        # even though the shard keeps growing between calls.
        while any(writer.is_alive() for writer in writers):
            index.sync()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        final = index.sync()
        assert index.count() == 2 * per_writer
        # A no-op sync after convergence re-reads nothing.
        assert index.sync().shards_read == 0
        rebuilt, _ = rebuild_index(store_path)
        assert rebuilt.count() == index.count() == len(
            RunStore(store_path).records()
        )
