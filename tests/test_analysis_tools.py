"""Tests for the potential tracker, the experiment runner and the reporting helpers."""

import pytest

from repro.adversaries import ControlledChurnAdversary, ScheduleAdversary, StaticAdversary
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.analysis.experiments import (
    ExperimentRecord,
    ExperimentRunner,
    aggregate_records,
    fit_power_law,
    scaling_exponent,
)
from repro.analysis.potential import PotentialTracker, potential_of_knowledge
from repro.analysis.reporting import (
    format_table,
    render_aggregates,
    render_paper_vs_measured,
    render_records,
    render_table1,
)
from repro.core.engine import run_execution
from repro.core.events import EventLog
from repro.core.problem import single_source_problem
from repro.core.tokens import Token
from repro.dynamics.generators import static_path_schedule
from repro.utils.validation import ConfigurationError
from tests.conftest import path_edges


class TestPotentialFunction:
    def test_potential_of_knowledge(self):
        knowledge = {0: frozenset({Token(0, 1)}), 1: frozenset()}
        kprime = {0: frozenset({Token(0, 1), Token(0, 2)}), 1: frozenset({Token(0, 1)})}
        assert potential_of_knowledge(knowledge, kprime) == 2 + 1

    def test_initial_potential_counts_union(self):
        problem = single_source_problem(4, 2)
        kprime = {node: frozenset({Token(0, 1)}) for node in problem.nodes}
        tracker = PotentialTracker(problem, kprime)
        # Source: |{t1,t2} ∪ {t1}| = 2; others: |{t1}| = 1 each.
        assert tracker.initial_potential == 2 + 3

    def test_maximum_potential_is_nk(self):
        problem = single_source_problem(4, 2)
        tracker = PotentialTracker(problem, {})
        assert tracker.maximum_potential() == 8

    def test_replay_ignores_learnings_already_in_kprime(self):
        problem = single_source_problem(3, 1)
        token = problem.tokens[0]
        kprime = {1: frozenset({token})}
        tracker = PotentialTracker(problem, kprime)
        events = EventLog()
        events.record(1, 1, token)  # discounted: already in K'_1
        events.record(2, 2, token)  # real progress
        trajectory = tracker.replay(events, num_rounds=2)
        assert trajectory.increases == [0, 1]
        assert trajectory.final == tracker.initial_potential + 1
        assert trajectory.total_increase == 1
        assert trajectory.max_round_increase == 1

    def test_rejects_kprime_for_unknown_node(self):
        problem = single_source_problem(3, 1)
        with pytest.raises(ConfigurationError):
            PotentialTracker(problem, {9: frozenset()})

    def test_full_execution_reaches_nk(self):
        problem = single_source_problem(6, 3)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(6, path_edges(6)), seed=1
        )
        tracker = PotentialTracker(problem, {})
        trajectory = tracker.replay(result.events, result.rounds)
        assert trajectory.final == tracker.maximum_potential()


class TestExperimentRunner:
    def _factories(self, n=6, k=3):
        return (
            lambda: single_source_problem(n, k),
            lambda: SingleSourceUnicastAlgorithm(),
            lambda: ControlledChurnAdversary(changes_per_round=2, edge_probability=0.4),
        )

    def test_run_produces_one_record_per_repetition(self):
        runner = ExperimentRunner(base_seed=1)
        records = runner.run(*self._factories(), repetitions=3, params={"n": 6, "k": 3})
        assert len(records) == 3
        assert all(isinstance(record, ExperimentRecord) for record in records)
        assert all(record.completed for record in records)
        assert {record.params["repetition"] for record in records} == {0, 1, 2}

    def test_records_carry_sweep_parameters(self):
        runner = ExperimentRunner(base_seed=2)
        records = runner.run(*self._factories(), repetitions=1, params={"n": 6, "label": "x"})
        assert records[0].params["n"] == 6
        assert records[0].params["label"] == "x"

    def test_repetitions_must_be_positive(self):
        runner = ExperimentRunner()
        with pytest.raises(ConfigurationError):
            runner.run(*self._factories(), repetitions=0)

    def test_runs_are_reproducible_for_same_base_seed(self):
        records_a = ExperimentRunner(base_seed=5).run(*self._factories(), repetitions=2)
        records_b = ExperimentRunner(base_seed=5).run(*self._factories(), repetitions=2)
        assert [r.total_messages for r in records_a] == [r.total_messages for r in records_b]

    def test_sweep_runs_every_configuration(self):
        runner = ExperimentRunner(base_seed=3)

        def build(config):
            n = config["n"]
            return (
                lambda: single_source_problem(n, 3),
                lambda: SingleSourceUnicastAlgorithm(),
                lambda: StaticAdversary(n, path_edges(n)),
            )

        records = runner.sweep([{"n": 5}, {"n": 7}], build, repetitions=2)
        assert len(records) == 4
        assert {record.params["n"] for record in records} == {5, 7}

    def test_aggregate_records_groups_and_averages(self):
        runner = ExperimentRunner(base_seed=4)

        def build(config):
            n = config["n"]
            return (
                lambda: single_source_problem(n, 3),
                lambda: SingleSourceUnicastAlgorithm(),
                lambda: StaticAdversary(n, path_edges(n)),
            )

        records = runner.sweep([{"n": 5}, {"n": 7}], build, repetitions=2)
        rows = aggregate_records(records, group_by=["n"])
        assert len(rows) == 2
        assert rows[0]["runs"] == 2
        assert all(row["completed"] for row in rows)
        assert rows[0]["total_messages"] > 0


class TestPowerLawFitting:
    def test_recovers_exact_exponent(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x**2 for x in xs]
        exponent, constant = fit_power_law(xs, ys)
        assert exponent == pytest.approx(2.0, abs=1e-9)
        assert constant == pytest.approx(3.0, rel=1e-6)

    def test_scaling_exponent_shortcut(self):
        xs = [8, 16, 32, 64]
        ys = [x**1.5 for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(1.5, abs=1e-9)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [1])

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1], [1])

    def test_rejects_non_positive_values(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [0, 1])


class TestReporting:
    def test_format_table_alignment_and_content(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", True]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "yes" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_format_table_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_render_table1_contains_all_regimes(self):
        rendered = render_table1(256)
        assert "k = n" in rendered
        assert "k = n^2" in rendered
        assert "O(n^2)" in rendered

    def test_render_records(self):
        runner = ExperimentRunner(base_seed=6)
        records = runner.run(
            lambda: single_source_problem(5, 2),
            lambda: SingleSourceUnicastAlgorithm(),
            lambda: StaticAdversary(5, path_edges(5)),
            repetitions=1,
            params={"n": 5},
        )
        rendered = render_records(records, ["n", "total_messages", "rounds"])
        assert "total_messages" in rendered
        assert "5" in rendered

    def test_render_aggregates(self):
        rows = [{"n": 5, "total_messages": 10.0}, {"n": 7, "total_messages": 20.0}]
        rendered = render_aggregates(rows, ["n", "total_messages"])
        assert "20.00" in rendered or "20" in rendered

    def test_render_paper_vs_measured(self):
        rendered = render_paper_vs_measured(
            [{"experiment": "E1", "paper": "O(n^2)", "measured": "n^1.9", "verdict": "match"}]
        )
        assert "E1" in rendered and "match" in rendered
