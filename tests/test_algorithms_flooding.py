"""Tests for the flooding algorithms (local broadcast model)."""

import pytest

from repro.adversaries import (
    LowerBoundAdversary,
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
)
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.core.comm import CommunicationModel
from repro.core.engine import run_execution
from repro.core.messages import MessageKind
from repro.core.problem import (
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
)
from repro.dynamics.generators import (
    path_shuffle_schedule,
    static_complete_schedule,
    static_path_schedule,
    star_oscillator_schedule,
)


class TestFloodingBasics:
    def test_model_is_local_broadcast(self):
        assert FloodingAlgorithm.communication_model is CommunicationModel.LOCAL_BROADCAST

    def test_completes_on_static_path(self):
        problem = single_source_problem(8, 3)
        result = run_execution(
            problem, FloodingAlgorithm(), ScheduleAdversary(static_path_schedule(8)), seed=1
        )
        assert result.completed
        result.verify_dissemination()

    def test_completes_on_changing_paths(self):
        problem = single_source_problem(10, 4)
        result = run_execution(
            problem,
            FloodingAlgorithm(),
            ScheduleAdversary(path_shuffle_schedule(10, 200, seed=3)),
            seed=2,
        )
        assert result.completed

    def test_completes_on_oscillating_star(self):
        problem = n_gossip_problem(9)
        result = run_execution(
            problem,
            FloodingAlgorithm(),
            ScheduleAdversary(star_oscillator_schedule(9, 200, seed=4)),
            seed=3,
        )
        assert result.completed

    def test_completes_against_lower_bound_adversary(self):
        problem = random_assignment_problem(10, 6, seed=5)
        result = run_execution(problem, FloodingAlgorithm(), LowerBoundAdversary(), seed=6)
        assert result.completed

    def test_only_token_messages_are_sent(self):
        problem = single_source_problem(6, 2)
        result = run_execution(
            problem, FloodingAlgorithm(), ScheduleAdversary(static_path_schedule(6)), seed=7
        )
        assert result.messages.messages_of_kind(MessageKind.TOKEN) == result.total_messages


class TestFloodingCost:
    def test_phase_structure_limits_rounds(self):
        problem = single_source_problem(8, 3)
        result = run_execution(
            problem, FloodingAlgorithm(), ScheduleAdversary(static_path_schedule(8)), seed=8
        )
        # Dissemination completes within k phases of n rounds each.
        assert result.rounds <= 8 * 3

    def test_broadcast_cost_at_most_n_squared_per_token(self):
        problem = single_source_problem(8, 4)
        result = run_execution(
            problem, FloodingAlgorithm(), ScheduleAdversary(static_complete_schedule(8)), seed=9
        )
        assert result.amortized_messages() <= 8 * 8

    def test_amortized_cost_is_quadratic_against_worst_case(self):
        """Against the lower-bound adversary the amortized cost is Ω((n/log n)²)-ish."""
        problem = random_assignment_problem(14, 10, seed=10)
        result = run_execution(problem, FloodingAlgorithm(), LowerBoundAdversary(), seed=11)
        assert result.completed
        n = problem.num_nodes
        # Far above linear: the naive algorithm pays a lot per token.
        assert result.amortized_messages() > 2 * n

    def test_current_token_sequence(self):
        problem = single_source_problem(4, 2)
        algorithm = FloodingAlgorithm(rounds_per_token=3)
        algorithm.setup(problem, __import__("random").Random(0))
        assert algorithm.current_token(1) == problem.tokens[0]
        assert algorithm.current_token(3) == problem.tokens[0]
        assert algorithm.current_token(4) == problem.tokens[1]
        assert algorithm.current_token(7) is None

    def test_custom_rounds_per_token_must_be_positive(self):
        with pytest.raises(Exception):
            FloodingAlgorithm(rounds_per_token=0)


class TestOneShotFlooding:
    def test_completes_on_static_complete_graph(self):
        problem = n_gossip_problem(8)
        result = run_execution(
            problem,
            OneShotFloodingAlgorithm(),
            ScheduleAdversary(static_complete_schedule(8)),
            seed=12,
        )
        assert result.completed

    def test_message_count_at_most_nk(self):
        problem = n_gossip_problem(8)
        result = run_execution(
            problem,
            OneShotFloodingAlgorithm(),
            ScheduleAdversary(static_complete_schedule(8)),
            seed=13,
        )
        assert result.total_messages <= 8 * 8

    def test_much_cheaper_than_phase_flooding_on_benign_graphs(self):
        problem = n_gossip_problem(10)
        adversary = lambda: RandomChurnObliviousAdversary(edge_probability=0.4)
        eager = run_execution(problem, FloodingAlgorithm(), adversary(), seed=14)
        lazy = run_execution(problem, OneShotFloodingAlgorithm(), adversary(), seed=14)
        if lazy.completed:
            assert lazy.total_messages < eager.total_messages

    def test_stops_when_queues_drain(self):
        problem = single_source_problem(6, 2)
        result = run_execution(
            problem,
            OneShotFloodingAlgorithm(),
            ScheduleAdversary(static_path_schedule(6)),
            max_rounds=1000,
            seed=15,
        )
        # Either completes or stops early at quiescence: never runs to the limit.
        assert result.rounds < 1000
