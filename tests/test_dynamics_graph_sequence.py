"""Unit tests for DynamicGraphTrace and GraphSchedule."""

import networkx as nx
import pytest

from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.utils.validation import ConfigurationError, SimulationError


class TestDynamicGraphTrace:
    def test_round_zero_is_empty(self):
        trace = DynamicGraphTrace([0, 1, 2])
        assert trace.edges_in_round(0) == frozenset()

    def test_record_round_normalizes_edges(self):
        trace = DynamicGraphTrace([0, 1, 2])
        recorded = trace.record_round([(1, 0), (2, 1)])
        assert recorded == frozenset({(0, 1), (1, 2)})

    def test_inserted_edges_of_first_round(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1)])
        assert trace.inserted_edges(1) == frozenset({(0, 1)})

    def test_inserted_and_removed_across_rounds(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1), (1, 2)])
        trace.record_round([(1, 2), (0, 2)])
        assert trace.inserted_edges(2) == frozenset({(0, 2)})
        assert trace.removed_edges(2) == frozenset({(0, 1)})

    def test_topological_changes_counts_insertions_only(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1), (1, 2)])   # +2
        trace.record_round([(0, 2)])           # +1 (two removed)
        trace.record_round([(0, 1), (0, 2)])   # +1
        assert trace.topological_changes() == 4

    def test_topological_changes_prefix(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1)])
        trace.record_round([(1, 2)])
        assert trace.topological_changes(up_to_round=1) == 1
        assert trace.topological_changes(up_to_round=2) == 2

    def test_removals_never_exceed_insertions(self):
        trace = DynamicGraphTrace(list(range(4)))
        trace.record_round([(0, 1), (1, 2), (2, 3)])
        trace.record_round([(0, 3)])
        trace.record_round([(0, 1)])
        assert trace.total_edge_removals() <= trace.topological_changes()

    def test_graph_returns_networkx_graph_with_all_nodes(self):
        trace = DynamicGraphTrace([0, 1, 2, 3])
        trace.record_round([(0, 1)])
        graph = trace.graph(1)
        assert isinstance(graph, nx.Graph)
        assert set(graph.nodes) == {0, 1, 2, 3}
        assert set(graph.edges) == {(0, 1)}

    def test_neighbors_map(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1), (1, 2)])
        neighbors = trace.neighbors(1)
        assert neighbors[1] == frozenset({0, 2})
        assert neighbors[0] == frozenset({1})

    def test_unknown_round_raises(self):
        trace = DynamicGraphTrace([0, 1])
        with pytest.raises(SimulationError):
            trace.edges_in_round(1)

    def test_edge_outside_node_set_rejected(self):
        trace = DynamicGraphTrace([0, 1])
        with pytest.raises(ConfigurationError):
            trace.record_round([(0, 5)])

    def test_edge_lifetime(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1)])
        trace.record_round([(0, 1), (1, 2)])
        trace.record_round([(1, 2)])
        assert trace.edge_lifetime((1, 0)) == 2
        assert trace.edge_lifetime((1, 2)) == 2

    def test_as_schedule_round_trip(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1)])
        trace.record_round([(1, 2)])
        schedule = trace.as_schedule()
        assert schedule.num_rounds == 2
        assert schedule.edges_for_round(1) == frozenset({(0, 1)})
        assert schedule.edges_for_round(2) == frozenset({(1, 2)})

    def test_len_and_repr(self):
        trace = DynamicGraphTrace([0, 1])
        trace.record_round([(0, 1)])
        assert len(trace) == 1
        assert "TC=1" in repr(trace)


class TestGraphSchedule:
    def test_requires_at_least_one_round(self):
        with pytest.raises(ConfigurationError):
            GraphSchedule([0, 1], [])

    def test_last_round_repeats_beyond_schedule(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(1, 2)]])
        assert schedule.edges_for_round(2) == frozenset({(1, 2)})
        assert schedule.edges_for_round(10) == frozenset({(1, 2)})

    def test_round_index_must_be_positive(self):
        schedule = GraphSchedule([0, 1], [[(0, 1)]])
        with pytest.raises(ConfigurationError):
            schedule.edges_for_round(0)

    def test_prefix(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(1, 2)], [(0, 2)]])
        prefix = schedule.prefix(2)
        assert prefix.num_rounds == 2
        assert prefix.edges_for_round(2) == frozenset({(1, 2)})

    def test_concatenate(self):
        first = GraphSchedule([0, 1], [[(0, 1)]])
        second = GraphSchedule([0, 1], [[(0, 1)]])
        combined = first.concatenate(second)
        assert combined.num_rounds == 2

    def test_concatenate_rejects_different_node_sets(self):
        first = GraphSchedule([0, 1], [[(0, 1)]])
        second = GraphSchedule([0, 1, 2], [[(0, 1)]])
        with pytest.raises(ConfigurationError):
            first.concatenate(second)

    def test_topological_changes(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(0, 1), (1, 2)], [(0, 2)]])
        assert schedule.topological_changes() == 3

    def test_topological_changes_prefix(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)], [(0, 1), (1, 2)], [(0, 2)]])
        assert schedule.topological_changes(num_rounds=2) == 2

    def test_iter_rounds(self):
        schedule = GraphSchedule([0, 1], [[(0, 1)]])
        rounds = list(schedule.iter_rounds())
        assert rounds == [(1, frozenset({(0, 1)}))]

    def test_equality(self):
        a = GraphSchedule([0, 1], [[(0, 1)]])
        b = GraphSchedule([0, 1], [[(1, 0)]])
        assert a == b

    def test_graph_accessor(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)]])
        graph = schedule.graph(1)
        assert set(graph.nodes) == {0, 1, 2}
        assert set(graph.edges) == {(0, 1)}
