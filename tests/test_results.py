"""Tests for the results warehouse: records, store, aggregation, comparison."""

import json
import math

import pytest

from repro.cli import main
from repro.results import (
    SCHEMA_VERSION,
    RecordValidationError,
    RunRecord,
    RunStore,
    aggregate,
    bound_ratio_rows,
    compare_to_bounds,
    dump_records,
    fit_scaling_exponent,
    load_records,
    open_source,
    register_bound,
    render_report,
)
from repro.results.compare import (
    VERDICT_ABOVE,
    VERDICT_WITHIN,
    BoundSpec,
    registered_bounds,
)
from repro.results.report import render_markdown_table, render_table
from repro.scenarios import ScenarioRunner, ScenarioSpec, sweep
from repro.utils.validation import ConfigurationError


def small_specs(repetitions=2, nodes=(8, 10)):
    base = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 8, "num_tokens": 6},
        algorithm="single-source",
        adversary="churn",
        repetitions=repetitions,
        seed=3,
    )
    return sweep(base, {"problem.num_nodes": list(nodes)})


@pytest.fixture(scope="module")
def run_records():
    """Records from one small serial sweep (shared; runs are deterministic)."""
    return ScenarioRunner().run(small_specs())


def synthetic_record(algorithm, n, k, s, repetition, amortized, competitive=None):
    """A hand-built record with controlled metric values."""
    spec = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": n, "num_tokens": k},
        algorithm=algorithm,
        adversary="churn",
        seed=0,
        repetitions=repetition + 1,
    )
    return RunRecord(
        scenario=spec.label,
        spec=spec.to_dict(),
        repetition=repetition,
        seed=repetition,
        n=n,
        k=k,
        s=s,
        completed=True,
        rounds=10,
        total_messages=int(amortized * k),
        amortized_messages=float(amortized),
        topological_changes=5,
        adversary_competitive=float(competitive if competitive is not None else amortized) * k,
        amortized_adversary_competitive=float(
            competitive if competitive is not None else amortized
        ),
        token_learnings=n * k,
    )


class TestRunRecord:
    def test_round_trip_preserves_schema_version(self, run_records):
        record = RunRecord.from_dict(run_records[0])
        assert record.schema_version == SCHEMA_VERSION
        clone = RunRecord.from_json_line(record.to_json_line())
        assert clone == record
        assert json.loads(record.to_json_line())["schema_version"] == SCHEMA_VERSION

    def test_runner_records_carry_the_schema_version(self, run_records):
        assert all(r["schema_version"] == SCHEMA_VERSION for r in run_records)

    def test_legacy_record_without_version_is_read_as_current(self, run_records):
        payload = dict(run_records[0])
        payload.pop("schema_version")
        assert RunRecord.from_dict(payload).schema_version == SCHEMA_VERSION

    def test_future_schema_version_is_rejected(self, run_records):
        payload = dict(run_records[0], schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="upgrade"):
            RunRecord.from_dict(payload)

    def test_identity_ignores_label_but_not_content(self, run_records):
        record = RunRecord.from_dict(run_records[0])
        renamed = RunRecord.from_dict(
            dict(run_records[0], spec=dict(run_records[0]["spec"], name="other-label"))
        )
        assert renamed.identity() == record.identity()
        reseeded = RunRecord.from_dict(
            dict(run_records[0], spec=dict(run_records[0]["spec"], seed=99))
        )
        assert reseeded.identity() != record.identity()

    def test_axis_values(self, run_records):
        record = RunRecord.from_dict(run_records[0])
        assert record.axis_value("algorithm") == "single-source"
        assert record.axis_value("problem.num_nodes") == record.n
        assert record.axis_value("n") == record.n
        with pytest.raises(RecordValidationError, match="unknown axis"):
            record.axis_value("not_an_axis")


class TestJsonl:
    def test_file_round_trip(self, tmp_path, run_records):
        path = tmp_path / "runs.jsonl"
        written = dump_records(run_records, path)
        loaded = load_records(path)
        assert written == len(run_records) == len(loaded)
        assert [r.to_dict() for r in loaded] == [
            RunRecord.from_dict(r).to_dict() for r in run_records
        ]

    def test_validation_error_names_file_and_line(self, tmp_path, run_records):
        path = tmp_path / "runs.jsonl"
        lines = [json.dumps(run_records[0]), "{not json", json.dumps(run_records[1])]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecordValidationError) as error:
            load_records(path)
        assert f"{path}:2" in str(error.value)

    def test_tolerant_read_skips_bad_lines(self, tmp_path, run_records):
        path = tmp_path / "runs.jsonl"
        lines = [json.dumps(run_records[0]), "", "garbage", json.dumps(run_records[1])]
        path.write_text("\n".join(lines) + "\n")
        assert len(load_records(path, on_error="skip")) == 2

    def test_wrongly_typed_field_is_rejected_with_its_name(self, run_records):
        payload = dict(run_records[0], rounds="many")
        with pytest.raises(ValueError, match="rounds"):
            RunRecord.from_dict(payload)


class TestRunStore:
    def test_add_then_readd_is_a_no_op(self, tmp_path, run_records):
        store = RunStore(tmp_path / "store")
        assert store.add(run_records) == (len(run_records), 0)
        assert store.add(run_records) == (0, len(run_records))
        assert len(store) == len(run_records)

    def test_add_replace_supersedes_existing_identities(self, tmp_path, run_records):
        store = RunStore(tmp_path / "store")
        store.add(run_records)
        changed = dict(run_records[0], rounds=run_records[0]["rounds"] + 7)
        # Without replace the changed record is skipped...
        assert store.add([changed]) == (0, 1)
        # ...with replace it supersedes (last-wins), once — an identical
        # re-add is still idempotent.
        assert store.add([changed], replace=True) == (1, 0)
        assert store.add([changed], replace=True) == (0, 1)
        reopened = RunStore(tmp_path / "store")
        assert len(reopened) == len(run_records)
        stored = {r.identity(): r for r in reopened.records()}
        key = RunRecord.from_dict(changed).identity()
        assert stored[key].rounds == changed["rounds"]

    def test_reopened_store_sees_the_same_records(self, tmp_path, run_records):
        RunStore(tmp_path / "store").add(run_records)
        reopened = RunStore(tmp_path / "store")
        assert [r.to_dict() for r in reopened.records()] == sorted(
            (RunRecord.from_dict(r).to_dict() for r in run_records),
            key=lambda d: (
                ScenarioSpec.from_dict(d["spec"]).scenario_key(), d["repetition"],
            ),
        )

    def test_merge_of_split_worker_outputs_equals_direct_store(self, tmp_path, run_records):
        direct = RunStore(tmp_path / "direct")
        direct.add(run_records)
        half = len(run_records) // 2
        worker_a = RunStore(tmp_path / "worker-a")
        worker_a.add(run_records[:half])
        worker_b = RunStore(tmp_path / "worker-b")
        worker_b.add(run_records[half:])
        merged = RunStore(tmp_path / "merged")
        merged.merge(worker_a)
        merged.merge(worker_b)
        merged.merge(worker_a)  # idempotent: merging twice changes nothing
        assert [r.to_dict() for r in merged.records()] == [
            r.to_dict() for r in direct.records()
        ]

    def test_ingest_jsonl(self, tmp_path, run_records):
        path = tmp_path / "runs.jsonl"
        dump_records(run_records, path)
        store = RunStore(tmp_path / "store")
        assert store.ingest_jsonl(path) == (len(run_records), 0)
        assert store.ingest_jsonl(path) == (0, len(run_records))

    def test_query_filters(self, tmp_path, run_records):
        store = RunStore(tmp_path / "store")
        store.add(run_records)
        assert store.query(algorithm="single-source") == store.records()
        assert store.query(algorithm="flooding") == []
        only_eight = store.query(where={"problem.num_nodes": 8})
        assert only_eight and all(r.n == 8 for r in only_eight)

    def test_lost_manifest_is_recovered_without_duplicates(self, tmp_path, run_records):
        # A crash between the shard append and the manifest save loses the
        # index but not the data; reopening must recover both the visibility
        # of the records and exact dedup.
        store_dir = tmp_path / "store"
        RunStore(store_dir).add(run_records)
        (store_dir / "manifest.json").unlink()
        reopened = RunStore(store_dir)
        assert len(reopened.records()) == len(run_records)
        assert reopened.add(run_records) == (0, len(run_records))
        shard_lines = sum(
            len(path.read_text().splitlines())
            for path in (store_dir / "shards").glob("*.jsonl")
        )
        assert shard_lines == len(run_records)

    def test_open_source_reads_stores_and_files(self, tmp_path, run_records):
        store = RunStore(tmp_path / "store")
        store.add(run_records)
        path = tmp_path / "runs.jsonl"
        dump_records(run_records, path)
        assert len(open_source(tmp_path / "store")) == len(run_records)
        assert len(open_source(path)) == len(run_records)
        with pytest.raises(ConfigurationError):
            open_source(tmp_path / "missing.jsonl")
        with pytest.raises(ConfigurationError):
            open_source(tmp_path)  # a directory without a manifest


class TestAggregation:
    def test_rows_are_independent_of_record_order(self, run_records):
        forward = aggregate(run_records, group_by=("algorithm", "n"))
        backward = aggregate(list(reversed(run_records)), group_by=("algorithm", "n"))
        assert forward == backward

    def test_parallel_and_serial_runs_aggregate_identically(self):
        specs = small_specs()
        serial = ScenarioRunner(workers=1).run(specs)
        parallel = ScenarioRunner(workers=2).run(specs)
        group_by = ("algorithm", "adversary", "n", "k")
        assert aggregate(serial, group_by) == aggregate(parallel, group_by)

    def test_statistics_of_known_values(self):
        records = [
            synthetic_record("flooding", 8, 4, 1, rep, amortized=value)
            for rep, value in enumerate([10.0, 20.0, 30.0])
        ]
        (row,) = aggregate(records, group_by=("algorithm",), metrics=("amortized_messages",))
        assert row["runs"] == 3
        assert row["amortized_messages_mean"] == pytest.approx(20.0)
        assert row["amortized_messages_median"] == pytest.approx(20.0)
        assert row["amortized_messages_min"] == 10.0
        assert row["amortized_messages_max"] == 30.0
        assert (
            row["amortized_messages_ci_low"]
            <= row["amortized_messages_mean"]
            <= row["amortized_messages_ci_high"]
        )

    def test_grouping_by_component_parameter(self, run_records):
        rows = aggregate(run_records, group_by=("problem.num_nodes",))
        assert [row["problem.num_nodes"] for row in rows] == [8, 10]


class TestComparison:
    def power_law_records(self, algorithm, exponent, k=8):
        return [
            synthetic_record(
                algorithm, n, k, 1, rep, amortized=float(n**exponent), competitive=float(n**exponent)
            )
            for n in (8, 16, 32, 64)
            for rep in (0, 1)
        ]

    def test_slope_fit_recovers_the_exponent(self):
        records = self.power_law_records("flooding", exponent=2)
        points = [{"n": r.n, "measured": r.amortized_messages} for r in records]
        fitted = fit_scaling_exponent(points)
        assert fitted == pytest.approx(2.0, abs=1e-6)

    def test_quadratic_growth_is_within_the_flooding_bound(self):
        rows = compare_to_bounds(self.power_law_records("flooding", exponent=2))
        (row,) = rows
        assert row["algorithm"] == "flooding"
        assert row["paper_bound"] == "O(n^2)"
        assert row["measured_exponent"] == pytest.approx(2.0, abs=1e-6)
        assert row["verdict"] == VERDICT_WITHIN

    def test_cubic_growth_exceeds_the_flooding_bound(self):
        rows = compare_to_bounds(self.power_law_records("flooding", exponent=3))
        assert rows[0]["verdict"] == VERDICT_ABOVE

    def test_ratio_rows_divide_measured_by_bound(self):
        records = [synthetic_record("flooding", 10, 4, 1, 0, amortized=50.0)]
        (row,) = bound_ratio_rows(records)
        assert row["bound"] == pytest.approx(100.0)
        assert row["ratio"] == pytest.approx(0.5)

    def test_algorithms_without_bounds_are_omitted(self):
        spec_fields = synthetic_record("flooding", 8, 4, 1, 0, amortized=1.0).to_dict()
        spec_fields["spec"]["algorithm"] = "random-walk-not-registered"
        assert bound_ratio_rows([spec_fields]) == []

    def test_every_builtin_algorithm_has_a_bound(self):
        bounds = registered_bounds()
        for name in ("flooding", "one-shot-flooding", "naive-unicast",
                     "spanning-tree", "single-source", "multi-source", "oblivious"):
            assert name in bounds
            value = bounds[name].evaluate(16, 32, 2)
            assert math.isfinite(value) and value > 0

    def test_register_bound_extension_hook(self):
        name = "custom-bound-test-algorithm"
        try:
            register_bound(name, BoundSpec(expression="n", evaluate=lambda n, k, s: float(n)))
            assert name in registered_bounds()
            with pytest.raises(ConfigurationError, match="replace=True"):
                register_bound(name, BoundSpec(expression="n", evaluate=lambda n, k, s: 1.0))
        finally:
            registered_bounds()  # defensive copy; remove via private map
            from repro.results import compare

            compare._ALGORITHM_BOUNDS.pop(name, None)


class TestRendering:
    def test_markdown_table_shape(self):
        table = render_markdown_table(["a", "b"], [[1, 2.5], ["x", None]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert "| x | — |" in lines

    def test_formats_dispatch(self):
        headers, rows = ["a"], [[1]]
        assert render_table(headers, rows, "csv") == "a\n1"
        assert json.loads(render_table(headers, rows, "json")) == [{"a": 1}]
        assert "a" in render_table(headers, rows, "text")
        with pytest.raises(ConfigurationError):
            render_table(headers, rows, "pdf")

    def test_report_contains_all_sections(self, run_records):
        document = render_report(run_records)
        assert "# Results report" in document
        assert "## Aggregates" in document
        assert "## Paper bounds vs measured" in document
        assert "## Table 1 (paper vs measured)" in document
        assert "within bound" in document or "above bound" in document


class TestCliAnalyze:
    def test_analyze_jsonl_file_with_bounds(self, tmp_path, capsys, run_records):
        path = tmp_path / "runs.jsonl"
        dump_records(run_records, path)
        assert main(["analyze", str(path), "--bounds"]) == 0
        output = capsys.readouterr().out
        assert "| algorithm |" in output
        assert "verdict" in output

    def test_analyze_reads_stdin(self, capsys, monkeypatch, run_records):
        import io

        lines = "\n".join(json.dumps(record) for record in run_records) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["analyze", "--group-by", "algorithm,n", "--format", "csv"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("algorithm,n,")

    def test_analyze_store_directory(self, tmp_path, capsys, run_records):
        store_dir = tmp_path / "store"
        RunStore(store_dir).add(run_records)
        assert main(["analyze", str(store_dir), "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["runs"] >= 1

    def test_analyze_empty_stdin_is_a_clean_error(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["analyze"]) == 2
        assert "no records" in capsys.readouterr().err

    def test_analyze_bad_jsonl_reports_the_line(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json\n")
        assert main(["analyze", str(path)]) == 2
        assert ":1" in capsys.readouterr().err

    def test_report_command_writes_a_file(self, tmp_path, capsys, run_records):
        path = tmp_path / "runs.jsonl"
        dump_records(run_records, path)
        out = tmp_path / "report.md"
        assert main(["report", str(path), "--output", str(out)]) == 0
        assert out.read_text().startswith("# Results report")


class TestCliSweepStore:
    def test_sweep_store_roundtrip_is_idempotent(self, tmp_path, capsys):
        store_dir = tmp_path / "warehouse"
        args = ["sweep", "-n", "8", "-k", "6", "--grid", '{"num_nodes": [8, 10]}',
                "--repetitions", "2", "--seed", "3", "--store", str(store_dir)]
        assert main(args) == 0
        first = len(RunStore(store_dir))
        assert first == 4
        assert main(args) == 0
        assert len(RunStore(store_dir)) == first
        # The re-run is incremental: the plan found every cell in the store
        # and executed nothing (see repro.api.Experiment.plan).
        assert "0 added, 4 already present (0 executed)" in capsys.readouterr().out

    def test_sweeping_num_nodes_follows_into_schedule_adversaries(self, capsys):
        # The adversary's required num_nodes is injected from -n before the
        # grid expands; sweeping the node count must update it per grid point.
        assert main(["sweep", "--adversary", "star-oscillator", "-n", "8", "-k", "6",
                     "--grid", '{"num_nodes": [8, 10]}', "--json"]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert {r["n"] for r in records} == {8, 10}
        assert all(r["spec"]["adversary_params"]["num_nodes"] == r["n"] for r in records)

    def test_explicit_adversary_num_nodes_is_not_resynced(self, capsys):
        # An explicit --set adversary.num_nodes is the user's choice; the
        # engine then reports the mismatch instead of silently overriding.
        exit_code = main(["sweep", "--adversary", "star-oscillator", "-n", "8", "-k", "6",
                          "--set", "adversary.num_nodes=8",
                          "--grid", '{"num_nodes": [10]}', "--json"])
        assert exit_code == 2

    def test_json_grid_bare_keys_map_to_problem_params(self, capsys):
        assert main(["sweep", "-n", "8", "-k", "6",
                     "--grid", '{"num_nodes": [8, 10], "seed": [1]}', "--json"]) == 0
        records = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert {record["n"] for record in records} == {8, 10}
        assert all(record["spec"]["seed"] == 1 for record in records)
