"""Tests for the Single-Source-Unicast algorithm (Algorithm 1, Theorems 3.1 / 3.4)."""

import pytest

from repro.adversaries import (
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    RequestCuttingAdversary,
    ScheduleAdversary,
    StaticAdversary,
)
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.core.comm import CommunicationModel
from repro.core.engine import run_execution
from repro.core.messages import MessageKind
from repro.core.problem import multi_source_problem, single_source_problem
from repro.dynamics.generators import (
    churn_schedule,
    static_complete_schedule,
    static_path_schedule,
    star_oscillator_schedule,
)
from repro.dynamics.stability import stabilize_schedule
from repro.utils.validation import ConfigurationError
from tests.conftest import path_edges, star_edges


class TestSetupValidation:
    def test_rejects_multi_source_problems(self):
        problem = multi_source_problem(6, {0: 1, 3: 2})
        with pytest.raises(ConfigurationError):
            run_execution(
                problem, SingleSourceUnicastAlgorithm(), StaticAdversary(6, path_edges(6)), seed=0
            )

    def test_model_is_unicast(self):
        assert (
            SingleSourceUnicastAlgorithm.communication_model is CommunicationModel.UNICAST
        )

    def test_source_property(self):
        problem = single_source_problem(6, 2, source=4)
        algorithm = SingleSourceUnicastAlgorithm()
        run_execution(problem, algorithm, StaticAdversary(6, path_edges(6)), seed=1)
        assert algorithm.source == 4


class TestCorrectness:
    @pytest.mark.parametrize("num_nodes,num_tokens", [(4, 1), (6, 3), (8, 5), (10, 12)])
    def test_completes_on_static_path(self, num_nodes, num_tokens):
        problem = single_source_problem(num_nodes, num_tokens)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            StaticAdversary(num_nodes, path_edges(num_nodes)),
            seed=2,
        )
        assert result.completed
        result.verify_dissemination()

    def test_completes_on_static_star(self):
        problem = single_source_problem(9, 6, source=3)
        result = run_execution(
            problem, SingleSourceUnicastAlgorithm(), StaticAdversary(9, star_edges(9, 0)), seed=3
        )
        assert result.completed

    def test_completes_on_complete_graph(self):
        problem = single_source_problem(10, 8)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(10)),
            seed=4,
        )
        assert result.completed

    def test_completes_under_oblivious_churn(self):
        problem = single_source_problem(10, 6)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            RandomChurnObliviousAdversary(edge_probability=0.3),
            seed=5,
        )
        assert result.completed

    def test_completes_on_three_edge_stable_churn(self):
        problem = single_source_problem(10, 5)
        schedule = stabilize_schedule(
            churn_schedule(10, 600, churn_fraction=0.4, seed=6), sigma=3
        )
        result = run_execution(
            problem, SingleSourceUnicastAlgorithm(), ScheduleAdversary(schedule), seed=6
        )
        assert result.completed

    def test_completes_under_partial_request_cutting(self):
        problem = single_source_problem(8, 4)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            RequestCuttingAdversary(cut_fraction=0.5, edge_probability=0.3),
            seed=7,
        )
        assert result.completed

    def test_every_node_becomes_complete_exactly_once(self):
        problem = single_source_problem(8, 4)
        algorithm = SingleSourceUnicastAlgorithm()
        result = run_execution(
            problem, algorithm, StaticAdversary(8, path_edges(8)), seed=8
        )
        assert result.completed
        assert sorted(algorithm.complete_nodes()) == list(problem.nodes)


class TestMessageBounds:
    def test_token_messages_at_most_nk(self):
        problem = single_source_problem(10, 6)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            RandomChurnObliviousAdversary(edge_probability=0.25),
            seed=9,
        )
        assert result.completed
        tokens_sent = result.messages.messages_of_kind(MessageKind.TOKEN)
        # Each node receives each token at most once (Theorem 3.1, type 1).
        assert tokens_sent <= 10 * 6

    def test_completeness_messages_at_most_n_squared(self):
        problem = single_source_problem(10, 6)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=5, edge_probability=0.3),
            seed=10,
        )
        announcements = result.messages.messages_of_kind(MessageKind.COMPLETENESS)
        assert announcements <= 10 * 9  # each node informs each other node at most once

    def test_requests_bounded_by_nk_plus_deletions(self):
        problem = single_source_problem(10, 6)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=4, edge_probability=0.3),
            seed=11,
        )
        requests = result.messages.messages_of_kind(MessageKind.REQUEST)
        deletions = result.trace.total_edge_removals()
        assert requests <= 10 * 6 + deletions

    def test_one_adversary_competitive_bound_theorem_3_1(self):
        """Total messages ≤ C·(n² + nk) + TC(E) with a small constant C."""
        n, k = 12, 10
        problem = single_source_problem(n, k)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=6, edge_probability=0.25),
            seed=12,
        )
        assert result.completed
        competitive = result.adversary_competitive_messages(alpha=1.0)
        assert competitive <= 3 * (n * n + n * k)

    def test_static_network_costs_no_adversary_budget(self):
        n, k = 10, 8
        problem = single_source_problem(n, k)
        result = run_execution(
            problem, SingleSourceUnicastAlgorithm(), StaticAdversary(n, path_edges(n)), seed=13
        )
        # On a static path TC(E) = n - 1 (the initial insertion), so almost the
        # whole cost is the algorithm's own O(n² + nk).
        assert result.topological_changes == n - 1
        assert result.total_messages <= 3 * (n * n + n * k)

    def test_amortized_cost_linear_for_large_k(self):
        n = 8
        k = 4 * n
        problem = single_source_problem(n, k)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=2, edge_probability=0.4),
            seed=14,
        )
        assert result.completed
        # For k = Ω(n) the amortized adversary-competitive cost is O(n).
        assert result.amortized_adversary_competitive_messages() <= 6 * n


class TestRoundComplexity:
    def test_O_nk_rounds_on_three_edge_stable_graphs(self):
        n, k = 10, 5
        problem = single_source_problem(n, k)
        schedule = stabilize_schedule(
            star_oscillator_schedule(n, 800, period=2, seed=15), sigma=3
        )
        result = run_execution(
            problem, SingleSourceUnicastAlgorithm(), ScheduleAdversary(schedule), seed=15
        )
        assert result.completed
        assert result.rounds <= 4 * n * k + 4 * n

    def test_fast_on_static_complete_graph(self):
        n, k = 12, 6
        problem = single_source_problem(n, k)
        result = run_execution(
            problem,
            SingleSourceUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(n)),
            seed=16,
        )
        assert result.completed
        # With everyone adjacent to the source, dissemination is nearly parallel.
        assert result.rounds <= 3 * k + 8


class TestEdgeClassification:
    def test_bridge_nodes_reported(self):
        problem = single_source_problem(5, 2)
        algorithm = SingleSourceUnicastAlgorithm()
        run_execution(problem, algorithm, StaticAdversary(5, path_edges(5)), max_rounds=1, seed=17)
        # After one round nothing is complete except the source, so its path
        # neighbour (node 1) is the only bridge node.
        neighbors = {0: frozenset({1}), 1: frozenset({0, 2}), 2: frozenset({1, 3}),
                     3: frozenset({2, 4}), 4: frozenset({3})}
        assert algorithm.bridge_nodes(neighbors) == [1]

    def test_observation_extra_exposes_complete_nodes(self):
        problem = single_source_problem(5, 2)
        algorithm = SingleSourceUnicastAlgorithm()
        run_execution(problem, algorithm, StaticAdversary(5, path_edges(5)), seed=18)
        extra = algorithm.observation_extra()
        assert extra["source"] == 0
        assert set(extra["complete_nodes"]) == set(problem.nodes)
