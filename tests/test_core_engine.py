"""Unit and behaviour tests for the synchronous round engine."""

from typing import Dict, List, Optional

import pytest

from repro.adversaries import ScheduleAdversary, StaticAdversary
from repro.adversaries.base import Adversary
from repro.algorithms.base import LocalBroadcastAlgorithm, UnicastAlgorithm
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.core.comm import CommunicationModel
from repro.core.engine import Simulator, default_round_limit, run_execution
from repro.core.messages import TokenMessage
from repro.core.problem import single_source_problem
from repro.dynamics.generators import static_complete_schedule, static_path_schedule
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
    ProtocolViolationError,
)
from tests.conftest import path_edges


class DisconnectingAdversary(Adversary):
    """Always returns a disconnected graph (for violation testing)."""

    oblivious = True
    name = "disconnecting"

    def edges_for_round(self, round_index, observation):
        return [(0, 1)]  # leaves the remaining nodes isolated


class ObservationRecordingAdversary(Adversary):
    """Adaptive adversary that records the observations it receives."""

    oblivious = False
    name = "recording"

    def __init__(self):
        super().__init__()
        self.observations = []

    def edges_for_round(self, round_index, observation):
        self.observations.append(observation)
        nodes = list(self.nodes)
        return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]


class ObliviousRecordingAdversary(ObservationRecordingAdversary):
    oblivious = True
    name = "oblivious-recording"


class RogueSenderAlgorithm(UnicastAlgorithm):
    """Sends a message to a non-neighbour to trigger a protocol violation."""

    name = "rogue"

    def select_messages(self, round_index, neighbors):
        nodes = sorted(self.nodes)
        sender = nodes[0]
        non_neighbors = [n for n in nodes if n != sender and n not in neighbors[sender]]
        if not non_neighbors:
            return {}
        return {sender: {non_neighbors[0]: [TokenMessage(self.problem.tokens[0])]}}


class SilentBroadcastAlgorithm(LocalBroadcastAlgorithm):
    """Never broadcasts anything (for round-limit testing)."""

    name = "silent"

    def select_broadcasts(self, round_index):
        return {node: None for node in self.nodes}


class TestDefaultRoundLimit:
    def test_scales_with_n_and_k(self):
        small = default_round_limit(single_source_problem(5, 2))
        large = default_round_limit(single_source_problem(50, 20))
        assert large > small
        assert small > 0


class TestSimulatorBasics:
    def test_rejects_non_algorithm(self):
        problem = single_source_problem(4, 2)
        with pytest.raises(ConfigurationError):
            Simulator(problem, object(), StaticAdversary(4, path_edges(4)))

    def test_run_execution_wrapper(self):
        problem = single_source_problem(5, 2)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(5, path_edges(5)), seed=1
        )
        assert result.completed

    def test_result_identifies_algorithm_and_adversary(self):
        problem = single_source_problem(5, 2)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(5, path_edges(5), name="chain"),
            seed=1,
        )
        assert result.algorithm_name == "naive-unicast"
        assert result.adversary_name == "chain"
        assert result.communication_model is CommunicationModel.UNICAST

    def test_deterministic_given_seed(self):
        problem = single_source_problem(8, 4)
        adversary = lambda: ScheduleAdversary(static_complete_schedule(8))
        result_a = run_execution(problem, NaiveUnicastAlgorithm(), adversary(), seed=7)
        result_b = run_execution(problem, NaiveUnicastAlgorithm(), adversary(), seed=7)
        assert result_a.total_messages == result_b.total_messages
        assert result_a.rounds == result_b.rounds

    def test_max_rounds_truncates_execution(self):
        problem = single_source_problem(6, 3)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            StaticAdversary(6, path_edges(6)),
            max_rounds=1,
            seed=0,
        )
        assert not result.completed
        assert result.rounds == 1

    def test_already_solved_problem_takes_zero_rounds(self):
        problem = single_source_problem(1, 3)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(1, []), seed=0
        )
        assert result.completed
        assert result.rounds == 0
        assert result.total_messages == 0


class TestModelEnforcement:
    def test_disconnected_adversary_rejected(self):
        problem = single_source_problem(5, 2)
        with pytest.raises(AdversaryViolationError):
            run_execution(problem, NaiveUnicastAlgorithm(), DisconnectingAdversary(), seed=0)

    def test_disconnected_allowed_when_flag_disabled(self):
        problem = single_source_problem(5, 2)
        simulator = Simulator(
            problem,
            NaiveUnicastAlgorithm(),
            DisconnectingAdversary(),
            require_connected=False,
            max_rounds=5,
            seed=0,
        )
        result = simulator.run()
        assert result.rounds == 5

    def test_sending_to_non_neighbor_rejected(self):
        problem = single_source_problem(5, 2)
        with pytest.raises(ProtocolViolationError):
            run_execution(
                problem, RogueSenderAlgorithm(), StaticAdversary(5, path_edges(5)), seed=0
            )


class TestObservations:
    def test_adaptive_adversary_receives_observations(self):
        problem = single_source_problem(5, 2)
        adversary = ObservationRecordingAdversary()
        run_execution(problem, NaiveUnicastAlgorithm(), adversary, seed=0)
        assert adversary.observations
        assert all(obs is not None for obs in adversary.observations)
        first = adversary.observations[0]
        assert first.round_index == 1
        assert set(first.knowledge) == set(problem.nodes)

    def test_oblivious_adversary_receives_none(self):
        problem = single_source_problem(5, 2)
        adversary = ObliviousRecordingAdversary()
        run_execution(problem, NaiveUnicastAlgorithm(), adversary, seed=0)
        assert adversary.observations
        assert all(obs is None for obs in adversary.observations)

    def test_broadcast_observation_contains_payloads(self):
        problem = single_source_problem(5, 2)
        adversary = ObservationRecordingAdversary()
        run_execution(problem, FloodingAlgorithm(), adversary, seed=0)
        first = adversary.observations[0]
        assert first.broadcasting_nodes() == [0]

    def test_previous_messages_propagated_to_observation(self):
        problem = single_source_problem(4, 2)
        adversary = ObservationRecordingAdversary()
        run_execution(problem, NaiveUnicastAlgorithm(), adversary, seed=0)
        # From the second round onward the observation carries the previous sends.
        later = adversary.observations[1]
        assert later.previous_messages


class TestTerminationBehaviour:
    def test_quiescent_incomplete_algorithm_stops_early(self):
        problem = single_source_problem(6, 3)
        # A silent algorithm never finishes; it is not quiescent either, so it
        # should run exactly to the round limit.
        result = run_execution(
            problem,
            SilentBroadcastAlgorithm(),
            ScheduleAdversary(static_path_schedule(6)),
            max_rounds=10,
            seed=0,
        )
        assert result.rounds == 10
        assert not result.completed

    def test_one_shot_flooding_stops_when_quiescent(self):
        problem = single_source_problem(6, 3)
        result = run_execution(
            problem,
            OneShotFloodingAlgorithm(),
            ScheduleAdversary(static_path_schedule(6)),
            max_rounds=500,
            seed=0,
        )
        # It either finishes dissemination or stops as soon as its queues drain,
        # far before the round limit.
        assert result.rounds < 500

    def test_event_log_matches_required_learnings_on_completion(self):
        problem = single_source_problem(7, 3)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(7, path_edges(7)), seed=1
        )
        assert result.completed
        result.verify_dissemination()
        assert result.token_learnings() == problem.required_token_learnings()

    def test_trace_is_recorded_per_round(self):
        problem = single_source_problem(6, 2)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(6, path_edges(6)), seed=1
        )
        assert result.trace.num_rounds == result.rounds
        assert result.topological_changes == 5  # path inserted once, never changed

    def test_summary_contains_headline_metrics(self):
        problem = single_source_problem(6, 2)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(6, path_edges(6)), seed=1
        )
        summary = result.summary()
        for key in ("algorithm", "n", "k", "total_messages", "amortized_messages", "rounds"):
            assert key in summary

    def test_verify_dissemination_raises_on_incomplete(self):
        problem = single_source_problem(6, 3)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            StaticAdversary(6, path_edges(6)),
            max_rounds=1,
            seed=0,
        )
        with pytest.raises(ConfigurationError):
            result.verify_dissemination()
