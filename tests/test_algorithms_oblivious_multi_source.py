"""Tests for the Oblivious-Multi-Source-Unicast algorithm (Algorithm 2, Theorem 3.8)."""

import pytest

from repro.adversaries import (
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
    StaticAdversary,
)
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.core.engine import run_execution
from repro.core.problem import (
    multi_source_problem,
    n_gossip_problem,
    uniform_multi_source_problem,
)
from repro.dynamics.generators import (
    rewiring_regular_schedule,
    static_complete_schedule,
    static_path_schedule,
)
from repro.utils.validation import ConfigurationError
from tests.conftest import path_edges


class TestParameterValidation:
    def test_rejects_invalid_center_probability(self):
        with pytest.raises(ConfigurationError):
            ObliviousMultiSourceAlgorithm(center_probability=0.0)
        with pytest.raises(ConfigurationError):
            ObliviousMultiSourceAlgorithm(center_probability=1.5)

    def test_rejects_invalid_degree_threshold(self):
        with pytest.raises(ConfigurationError):
            ObliviousMultiSourceAlgorithm(degree_threshold=0.0)

    def test_rejects_invalid_phase1_limit(self):
        with pytest.raises(ConfigurationError):
            ObliviousMultiSourceAlgorithm(phase1_round_limit=0)


class TestPhaseSelection:
    def test_few_sources_skip_phase_one(self):
        problem = multi_source_problem(12, {0: 4, 5: 4})
        algorithm = ObliviousMultiSourceAlgorithm()
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(12)), seed=1
        )
        assert result.completed
        assert algorithm.phase == 2
        assert algorithm.phase1_rounds == 0
        assert algorithm.centers == ()

    def test_force_two_phase_runs_random_walks(self):
        problem = n_gossip_problem(12)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.25
        )
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(12)), seed=2
        )
        assert result.completed
        assert algorithm.phase == 2  # must have transitioned by the end
        assert algorithm.phase1_rounds > 0
        assert len(algorithm.centers) >= 1

    def test_force_single_phase_even_with_many_sources(self):
        problem = n_gossip_problem(10)
        algorithm = ObliviousMultiSourceAlgorithm(force_two_phase=False)
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(10)), seed=3
        )
        assert result.completed
        assert algorithm.phase1_rounds == 0


class TestCorrectness:
    def test_completes_on_complete_graph_n_gossip(self):
        problem = n_gossip_problem(14)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.3
        )
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(14)), seed=4
        )
        assert result.completed
        result.verify_dissemination()

    def test_completes_on_expander_like_dynamic_graph(self):
        problem = n_gossip_problem(14)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.3
        )
        schedule = rewiring_regular_schedule(14, 400, degree=6, seed=5)
        result = run_execution(problem, algorithm, ScheduleAdversary(schedule), seed=5)
        assert result.completed

    def test_completes_under_random_churn(self):
        problem = uniform_multi_source_problem(12, 10, 14, seed=6)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.3
        )
        result = run_execution(
            problem, algorithm, RandomChurnObliviousAdversary(edge_probability=0.4), seed=6
        )
        assert result.completed

    def test_completes_on_path_with_phase1_round_limit(self):
        """On a path the walks are slow; the round-limit safeguard must still
        let the execution finish correctly."""
        problem = n_gossip_problem(10)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.2, phase1_round_limit=20
        )
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_path_schedule(10)), seed=7
        )
        assert result.completed
        assert algorithm.phase1_rounds <= 20

    def test_phase_two_catalog_covers_all_tokens(self):
        problem = n_gossip_problem(12)
        algorithm = ObliviousMultiSourceAlgorithm(
            force_two_phase=True, center_probability=0.25
        )
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(12)), seed=8
        )
        assert result.completed
        catalog_tokens = set()
        for source in algorithm.catalog_sources():
            catalog_tokens |= set(algorithm.catalog_of(source))
        assert catalog_tokens == set(problem.tokens)

    def test_observation_extra_reports_phase(self):
        problem = n_gossip_problem(10)
        algorithm = ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.3)
        run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(10)), seed=9
        )
        extra = algorithm.observation_extra()
        assert extra["phase"] == 2
        assert "centers" in extra


class TestMessageComplexity:
    def test_phase1_messages_counted(self):
        problem = n_gossip_problem(14)
        algorithm = ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.2)
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(14)), seed=10
        )
        assert result.completed
        assert algorithm.phase1_messages > 0
        assert algorithm.phase1_messages <= result.total_messages

    def test_source_reduction_lowers_announcement_cost_for_n_gossip(self):
        """With many sources, reducing them to a few centers must beat plain
        Multi-Source-Unicast on total messages (the whole point of Algorithm 2)."""
        n = 16
        problem = n_gossip_problem(n)
        adversary = lambda: ScheduleAdversary(static_complete_schedule(n))
        plain = run_execution(problem, MultiSourceUnicastAlgorithm(), adversary(), seed=11)
        reduced = run_execution(
            problem,
            ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.15),
            adversary(),
            seed=11,
        )
        assert plain.completed and reduced.completed
        assert reduced.total_messages < plain.total_messages

    def test_amortized_cost_below_n_squared(self):
        n = 16
        problem = n_gossip_problem(n)
        algorithm = ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.15)
        result = run_execution(
            problem, algorithm, ScheduleAdversary(static_complete_schedule(n)), seed=12
        )
        assert result.completed
        assert result.amortized_messages() < n * n
