"""Unit tests for repro.utils.validation and repro.utils.ids."""

import pytest

from repro.utils.ids import normalize_edge, normalize_edges, validate_edges, validate_nodes
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
    require_in_range,
    require_non_negative_int,
    require_positive_int,
    require_probability,
    require_type,
)


class TestExceptionHierarchy:
    def test_configuration_error_is_repro_error(self):
        assert issubclass(ConfigurationError, ReproError)

    def test_simulation_error_is_repro_error(self):
        assert issubclass(SimulationError, ReproError)

    def test_protocol_violation_is_simulation_error(self):
        assert issubclass(ProtocolViolationError, SimulationError)

    def test_adversary_violation_is_simulation_error(self):
        assert issubclass(AdversaryViolationError, SimulationError)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(1.0, "x")


class TestRequireNonNegativeInt:
    def test_accepts_zero(self):
        assert require_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative_int(-5, "x")


class TestRequireProbability:
    def test_accepts_bounds(self):
        assert require_probability(0, "p") == 0.0
        assert require_probability(1, "p") == 1.0

    def test_accepts_interior(self):
        assert require_probability(0.25, "p") == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "p")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_probability(-0.1, "p")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_probability(True, "p")


class TestRequireInRange:
    def test_accepts_in_range(self):
        assert require_in_range(5, 0, 10, "x") == 5

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            require_in_range(11, 0, 10, "x")


class TestRequireType:
    def test_accepts_matching_type(self):
        assert require_type("abc", str, "x") == "abc"

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            require_type(3, str, "x")


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)

    def test_keeps_sorted_order(self):
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            normalize_edge(3, 3)

    def test_normalize_edges_deduplicates(self):
        assert normalize_edges([(1, 2), (2, 1)]) == frozenset({(1, 2)})


class TestValidateNodes:
    def test_sorts_nodes(self):
        assert validate_nodes([3, 1, 2]) == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_nodes([1, 1])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            validate_nodes([])

    def test_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            validate_nodes(["a"])

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            validate_nodes([True, 2])


class TestValidateEdges:
    def test_normalizes_and_filters(self):
        edges = validate_edges([0, 1, 2], [(2, 1), (0, 1)])
        assert edges == frozenset({(1, 2), (0, 1)})

    def test_rejects_endpoint_outside_nodes(self):
        with pytest.raises(ConfigurationError):
            validate_edges([0, 1], [(0, 2)])
