"""Tests for the declarative Scenario API: registries, specs and the runner."""

import json

import pytest

from repro.algorithms.base import TokenForwardingAlgorithm
from repro.core.problem import DisseminationProblem
from repro.scenarios import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
    ScenarioRunner,
    ScenarioSpec,
    materialize,
    record_to_json_line,
    repetition_seed,
    run_scenario,
    run_spec,
    sweep,
)
from repro.scenarios.registry import Registry
from repro.utils.validation import ConfigurationError

#: Values used to satisfy required constructor parameters in bulk tests.
REQUIRED_PARAM_VALUES = {
    "num_nodes": 6,
    "num_tokens": 4,
    "num_sources": 2,
}


def required_params(entry):
    return {
        info.name: REQUIRED_PARAM_VALUES[info.name]
        for info in entry.parameters()
        if info.required
    }


class TestBuiltinRegistries:
    def test_expected_names_are_registered(self):
        assert "single-source" in ALGORITHM_REGISTRY
        assert "oblivious" in ALGORITHM_REGISTRY
        assert "churn" in ADVERSARY_REGISTRY
        assert "lower-bound" in ADVERSARY_REGISTRY
        assert "n-gossip" in PROBLEM_REGISTRY
        assert "random-placement" in PROBLEM_REGISTRY

    def test_every_algorithm_is_constructible_by_name(self):
        for entry in ALGORITHM_REGISTRY.entries():
            algorithm = entry.create(**required_params(entry))
            assert isinstance(algorithm, TokenForwardingAlgorithm), entry.name

    def test_every_adversary_is_constructible_by_name(self):
        for entry in ADVERSARY_REGISTRY.entries():
            adversary = entry.create(**required_params(entry))
            assert hasattr(adversary, "reset"), entry.name
            assert hasattr(adversary, "edges_for_round"), entry.name

    def test_every_problem_is_constructible_by_name(self):
        for entry in PROBLEM_REGISTRY.entries():
            problem = entry.create(**required_params(entry))
            assert isinstance(problem, DisseminationProblem), entry.name

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="single-source"):
            ALGORITHM_REGISTRY.get("no-such-algorithm")

    def test_near_miss_gets_a_did_you_mean_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean 'flooding'"):
            ALGORITHM_REGISTRY.get("floodng")
        with pytest.raises(ConfigurationError, match="did you mean 'churn'"):
            ADVERSARY_REGISTRY.get("chrun")
        with pytest.raises(ConfigurationError, match="did you mean 'n-gossip'"):
            PROBLEM_REGISTRY.get("ngossip")

    def test_far_miss_has_no_suggestion_but_lists_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ALGORITHM_REGISTRY.get("zzzzzz")
        message = str(excinfo.value)
        assert "did you mean" not in message
        assert "flooding" in message

    def test_lookup_miss_never_escapes_as_a_key_error(self):
        with pytest.raises(ConfigurationError):
            ALGORITHM_REGISTRY.get("floodng")
        try:
            ALGORITHM_REGISTRY.get("floodng")
        except KeyError:  # pragma: no cover - the regression this guards
            pytest.fail("registry misses must raise ConfigurationError, not KeyError")
        except ConfigurationError:
            pass

    def test_unknown_parameter_is_rejected_with_known_parameters(self):
        with pytest.raises(ConfigurationError, match="changes_per_round"):
            ADVERSARY_REGISTRY.create("churn", bogus=1)

    def test_oblivious_defaults_match_the_historical_cli(self):
        entry = ALGORITHM_REGISTRY.get("oblivious")
        defaults = {info.name: info.default for info in entry.parameters()}
        assert defaults["force_two_phase"] is True
        assert defaults["center_probability"] == 0.2


class TestRegistryExtension:
    def test_decorator_registers_and_returns_the_factory(self):
        registry = Registry("widget")

        @registry.register("my-widget", defaults={"size": 3})
        def make_widget(size: int = 1):
            """A widget."""
            return ("widget", size)

        assert registry.names() == ["my-widget"]
        assert registry.create("my-widget") == ("widget", 3)
        assert registry.create("my-widget", size=5) == ("widget", 5)
        assert registry.get("my-widget").description == "A widget."
        assert make_widget(2) == ("widget", 2)

    def test_duplicate_registration_is_rejected_unless_replaced(self):
        registry = Registry("widget")
        registry.register("w")(lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("w")(lambda: 2)
        registry.register("w", replace=True)(lambda: 3)
        assert registry.create("w") == 3


def small_spec(**overrides):
    fields = dict(
        problem="single-source",
        problem_params={"num_nodes": 8, "num_tokens": 6},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        seed=11,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestScenarioSpec:
    def test_json_round_trip_is_identity(self):
        spec = small_spec(repetitions=3, max_rounds=500, name="round-trip")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_for_every_builtin_combination_shape(self):
        specs = [
            small_spec(),
            small_spec(problem="n-gossip", problem_params={"num_nodes": 6},
                       algorithm="multi-source"),
            small_spec(problem="random-placement",
                       problem_params={"num_nodes": 6, "num_tokens": 6},
                       algorithm="flooding", adversary="lower-bound",
                       adversary_params={}),
        ]
        for spec in specs:
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_json_fields_are_rejected(self):
        payload = json.loads(small_spec().to_json())
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            ScenarioSpec.from_dict(payload)

    def test_invalid_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(repetitions=0)
        with pytest.raises(ConfigurationError):
            small_spec(seed="nope")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(problem="", algorithm="a", adversary="b")

    def test_label_defaults_to_component_names(self):
        assert small_spec().label == "single-source-vs-churn-on-single-source"
        assert small_spec(name="custom").label == "custom"

    def test_scenario_key_ignores_the_name(self):
        assert small_spec(name="a").scenario_key() == small_spec(name="b").scenario_key()

    def test_repetition_seeds_are_stable_and_distinct(self):
        spec = small_spec(repetitions=3)
        seeds = [repetition_seed(spec, r) for r in range(3)]
        assert len(set(seeds)) == 3
        assert seeds == [repetition_seed(spec, r) for r in range(3)]


class TestSweep:
    def test_empty_grid_returns_the_base(self):
        base = small_spec()
        assert sweep(base, {}) == [base]

    def test_cross_product_expansion(self):
        base = small_spec()
        specs = sweep(base, {"problem.num_nodes": [8, 12, 16], "seed": [0, 1]})
        assert len(specs) == 6
        assert [s.problem_params["num_nodes"] for s in specs] == [8, 8, 12, 12, 16, 16]
        assert [s.seed for s in specs] == [0, 1, 0, 1, 0, 1]
        # The base is untouched.
        assert base.seed == 11

    def test_top_level_and_nested_keys(self):
        specs = sweep(small_spec(), {"algorithm": ["single-source"],
                                     "adversary.changes_per_round": [1, 3]})
        assert [s.adversary_params["changes_per_round"] for s in specs] == [1, 3]

    def test_invalid_key_is_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid sweep key"):
            sweep(small_spec(), {"nonsense_key": [1]})
        with pytest.raises(ConfigurationError, match="invalid sweep key"):
            sweep(small_spec(), {"problem_params.num_nodes": [1]})

    def test_empty_values_are_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            sweep(small_spec(), {"seed": []})


class TestMaterialization:
    def test_materialize_builds_live_objects(self):
        scenario = materialize(small_spec())
        assert isinstance(scenario.problem, DisseminationProblem)
        assert scenario.problem.num_nodes == 8
        assert isinstance(scenario.algorithm, TokenForwardingAlgorithm)
        assert hasattr(scenario.adversary, "edges_for_round")

    def test_randomized_problem_gets_a_derived_seed(self):
        spec = small_spec(
            problem="multi-source",
            problem_params={"num_nodes": 10, "num_sources": 3, "num_tokens": 6},
            algorithm="multi-source",
        )
        # Without an explicit problem seed the sources must still be the
        # same on every materialization (no hidden nondeterminism).
        first = materialize(spec).problem
        second = materialize(spec).problem
        assert first.sources == second.sources

    def test_explicit_problem_seed_is_respected(self):
        spec = small_spec(
            problem="multi-source",
            problem_params={"num_nodes": 10, "num_sources": 3, "num_tokens": 6,
                            "seed": 123},
            algorithm="multi-source",
        )
        assert materialize(spec).problem.sources == materialize(spec).problem.sources


class TestRunner:
    def test_run_scenario_returns_a_full_result(self):
        result = run_scenario(small_spec())
        assert result.completed
        assert result.num_nodes == 8
        assert result.total_messages > 0

    def test_run_scenario_rejects_out_of_range_repetition(self):
        with pytest.raises(ConfigurationError, match="repetition"):
            run_scenario(small_spec(), repetition=1)

    def test_run_spec_produces_one_record_per_repetition(self):
        records = run_spec(small_spec(repetitions=3))
        assert [record["repetition"] for record in records] == [0, 1, 2]
        assert all(record["completed"] for record in records)
        assert len({record["seed"] for record in records}) == 3

    def test_records_are_json_ready(self):
        record = run_spec(small_spec())[0]
        rebuilt = json.loads(record_to_json_line(record))
        assert rebuilt == record
        assert ScenarioSpec.from_dict(rebuilt["spec"]) == small_spec()

    def test_parallel_batch_is_byte_identical_to_serial(self, tmp_path):
        specs = sweep(
            small_spec(repetitions=2),
            {"problem.num_nodes": [8, 10, 12], "seed": [1, 2]},
        )
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = ScenarioRunner(workers=1).run(specs, jsonl_path=serial_path)
        parallel = ScenarioRunner(workers=2).run(specs, jsonl_path=parallel_path)
        assert serial == parallel
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert len(serial_path.read_text().strip().splitlines()) == len(specs) * 2

    def test_progress_callback_sees_every_spec_in_order(self):
        specs = sweep(small_spec(), {"seed": [0, 1, 2]})
        seen = []
        ScenarioRunner(progress=lambda done, total, spec: seen.append((done, total, spec.seed))).run(specs)
        assert seen == [(1, 3, 0), (2, 3, 1), (3, 3, 2)]

    def test_invalid_workers_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunner(workers=0)

    def test_non_spec_items_are_rejected(self):
        with pytest.raises(ConfigurationError, match="ScenarioSpec"):
            ScenarioRunner().run([{"problem": "single-source"}])


class TestReviewRegressions:
    def test_missing_required_parameter_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="num_nodes"):
            ADVERSARY_REGISTRY.create("static-random")
        with pytest.raises(ConfigurationError, match="requires"):
            PROBLEM_REGISTRY.create("single-source")

    def test_scenario_key_ignores_repetitions_and_max_rounds(self):
        base = small_spec(repetitions=1)
        extended = small_spec(repetitions=3, max_rounds=999)
        assert base.scenario_key() == extended.scenario_key()
        # Extending a batch keeps already-run repetitions reproducible.
        assert repetition_seed(base, 0) == repetition_seed(extended, 0)
        first = run_spec(base)[0]
        rerun = run_spec(extended)[0]
        for field in ("seed", "rounds", "total_messages", "completed"):
            assert first[field] == rerun[field]

    def test_extension_modules_are_validated(self):
        with pytest.raises(ConfigurationError, match="extension_modules"):
            ScenarioRunner(extension_modules=[""])
        with pytest.raises(ConfigurationError, match="extension_modules"):
            ScenarioRunner(extension_modules=[object()])

    def test_parallel_run_imports_extension_modules(self, tmp_path):
        # "repro.scenarios" is trivially importable in workers; this pins the
        # payload plumbing without needing a spawn-start interpreter.
        specs = sweep(small_spec(), {"seed": [0, 1]})
        records = ScenarioRunner(
            workers=2, extension_modules=["repro.scenarios"]
        ).run(specs)
        assert len(records) == 2
