"""Unit tests for tokens and message payloads."""

import pytest

from repro.core.messages import (
    CompletenessMessage,
    ControlMessage,
    MessageKind,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.tokens import (
    Token,
    make_tokens,
    source_token_counts,
    tokens_by_source,
    validate_token_universe,
)
from repro.utils.validation import ConfigurationError


class TestToken:
    def test_token_is_hashable_and_comparable(self):
        assert Token(0, 1) == Token(0, 1)
        assert len({Token(0, 1), Token(0, 1), Token(0, 2)}) == 2

    def test_token_ordering_by_source_then_index(self):
        assert Token(0, 2) < Token(1, 1)
        assert Token(1, 1) < Token(1, 2)

    def test_index_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Token(0, 0)

    def test_str_contains_source_and_index(self):
        assert "3" in str(Token(3, 7)) and "7" in str(Token(3, 7))


class TestMakeTokens:
    def test_creates_indexed_tokens(self):
        tokens = make_tokens(4, 3)
        assert tokens == (Token(4, 1), Token(4, 2), Token(4, 3))

    def test_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_tokens(0, 0)


class TestTokenGrouping:
    def test_tokens_by_source(self):
        tokens = [Token(1, 2), Token(0, 1), Token(1, 1)]
        grouped = tokens_by_source(tokens)
        assert grouped == {0: [Token(0, 1)], 1: [Token(1, 1), Token(1, 2)]}

    def test_source_token_counts(self):
        tokens = list(make_tokens(0, 2)) + list(make_tokens(5, 4))
        assert source_token_counts(tokens) == {0: 2, 5: 4}

    def test_validate_universe_accepts_wellformed(self):
        tokens = list(make_tokens(0, 2)) + list(make_tokens(1, 1))
        assert validate_token_universe(tokens) == tuple(tokens)

    def test_validate_universe_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_token_universe([Token(0, 1), Token(0, 1)])

    def test_validate_universe_rejects_gapped_indices(self):
        with pytest.raises(ConfigurationError):
            validate_token_universe([Token(0, 1), Token(0, 3)])


class TestMessagePayloads:
    def test_token_message_kind(self):
        assert TokenMessage(Token(0, 1)).kind is MessageKind.TOKEN

    def test_completeness_message_kind(self):
        assert CompletenessMessage(source=3).kind is MessageKind.COMPLETENESS

    def test_request_message_kind_and_token(self):
        request = RequestMessage(source=2, index=5)
        assert request.kind is MessageKind.REQUEST
        assert request.token == Token(2, 5)

    def test_control_message_kind(self):
        assert ControlMessage(tag="join").kind is MessageKind.CONTROL

    def test_received_message_exposes_kind(self):
        received = ReceivedMessage(sender=1, payload=TokenMessage(Token(0, 1)))
        assert received.kind is MessageKind.TOKEN
        assert received.sender == 1

    def test_payloads_are_hashable(self):
        assert len({TokenMessage(Token(0, 1)), TokenMessage(Token(0, 1))}) == 1

    def test_message_kind_str(self):
        assert str(MessageKind.TOKEN) == "token"
