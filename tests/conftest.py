"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.adversaries import (
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
    StaticAdversary,
)
from repro.core.problem import (
    multi_source_problem,
    n_gossip_problem,
    single_source_problem,
)
from repro.dynamics.generators import (
    static_complete_schedule,
    static_path_schedule,
)


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return random.Random(12345)


@pytest.fixture
def small_single_source_problem():
    """A small single-source instance: 8 nodes, 5 tokens at node 0."""
    return single_source_problem(num_nodes=8, num_tokens=5)


@pytest.fixture
def small_multi_source_problem():
    """A small multi-source instance: 8 nodes, 3 sources, 6 tokens."""
    return multi_source_problem(8, {0: 2, 3: 1, 6: 3})


@pytest.fixture
def small_gossip_problem():
    """An n-gossip instance with 8 nodes."""
    return n_gossip_problem(8)


@pytest.fixture
def path_adversary():
    """A static path over 8 nodes."""
    return ScheduleAdversary(static_path_schedule(8, num_rounds=1), name="path")


@pytest.fixture
def complete_adversary():
    """A static complete graph over 8 nodes."""
    return ScheduleAdversary(static_complete_schedule(8, num_rounds=1), name="complete")


@pytest.fixture
def churn_adversary():
    """A mild oblivious churn adversary."""
    return ControlledChurnAdversary(changes_per_round=2, edge_probability=0.3)


def path_edges(num_nodes: int):
    """Edges of the path 0-1-...-(n-1)."""
    return [(i, i + 1) for i in range(num_nodes - 1)]


def star_edges(num_nodes: int, center: int = 0):
    """Edges of the star centred at ``center``."""
    return [(center, i) for i in range(num_nodes) if i != center]
