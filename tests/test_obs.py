"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tracer protocol and its zero-overhead disabled mode, the
identity guarantee (tracing never changes results), metrics instruments
and sinks, typed progress events and their ordering under fresh / cached /
mixed runs, JSONL trace round-trips, the CLI surface (``--trace``,
``trace summarize``, logging flags), and the bench overhead gate logic.
"""

import io
import json
import logging
import time

import pytest

from repro.backends import get_backend
from repro.backends.differential import diff_results
from repro.obs import (
    KERNEL_STAGES,
    NULL_TRACER,
    CellCached,
    CellCompleted,
    CellStarted,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullTracer,
    ProgressPrinter,
    RunFinished,
    StderrSink,
    TimingTracer,
    TraceWriter,
    event_from_dict,
    event_to_dict,
    read_trace,
    render_trace_summary,
    summarize_trace,
    timing_delta,
    track_peak_memory,
)
from repro.obs.logs import configure_logging, get_logger, resolve_level
from repro.scenarios import ScenarioSpec
from repro.scenarios.runner import run_scenario


def small_spec(num_nodes=10, repetitions=1, **overrides):
    params = dict(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": 8},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes},
        repetitions=repetitions,
        name="obs-test",
    )
    params.update(overrides)
    return ScenarioSpec(**params)


# ---------------------------------------------------------------------------
# Tracing primitives
# ---------------------------------------------------------------------------


class TestTimingTracer:
    def test_accumulates_totals_and_counts_per_name(self):
        tracer = TimingTracer()
        for _ in range(3):
            with tracer.span("commit"):
                pass
        with tracer.span("delivery"):
            time.sleep(0.01)
        assert tracer.counts == {"commit": 3, "delivery": 1}
        assert tracer.timings()["delivery"] >= 0.01
        assert tracer.timings()["commit"] >= 0.0

    def test_nested_spans_accrue_under_both_names(self):
        tracer = TimingTracer()
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
                time.sleep(0.01)
        assert tracer.depth == 0
        assert tracer.max_depth == 2
        # Wall-clock inclusion: the outer span contains the inner's time.
        assert tracer.totals["outer"] >= tracer.totals["inner"] >= 0.01

    def test_out_of_order_close_raises(self):
        tracer = TimingTracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_timings_returns_a_copy(self):
        tracer = TimingTracer()
        with tracer.span("commit"):
            pass
        snapshot = tracer.timings()
        snapshot["commit"] = -1.0
        assert tracer.totals["commit"] >= 0.0

    def test_snapshot_is_json_ready(self):
        tracer = TimingTracer()
        with tracer.span("commit"):
            pass
        payload = json.loads(json.dumps(tracer.snapshot()))
        assert payload["counts"] == {"commit": 1}


class TestNullTracer:
    def test_disabled_by_default_and_shares_one_span(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", round=3)
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.timings() is None

    def test_forced_enabled_keeps_spans_free(self):
        forced = NullTracer(enabled=True)
        assert forced.enabled is True
        assert forced.span("commit") is NULL_TRACER.span("commit")


class TestTimingDelta:
    def test_none_after_yields_none(self):
        assert timing_delta({"a": 1.0}, None) is None

    def test_empty_before_copies_after(self):
        after = {"a": 1.0}
        delta = timing_delta(None, after)
        assert delta == {"a": 1.0}
        assert delta is not after

    def test_differences_are_per_name(self):
        before = {"commit": 1.0, "delivery": 2.0}
        after = {"commit": 1.5, "delivery": 2.0, "adversary": 0.25}
        assert timing_delta(before, after) == {"commit": 0.5, "adversary": 0.25}


# ---------------------------------------------------------------------------
# Tracing never changes results
# ---------------------------------------------------------------------------


class TestTracedExecutionIdentity:
    @pytest.mark.parametrize("backend", ["reference", "bitset"])
    def test_traced_run_matches_untraced(self, backend):
        spec = small_spec(backend=backend)
        plain = run_scenario(spec)
        tracer = TimingTracer()
        traced = run_scenario(spec, tracer=tracer)
        assert not diff_results(plain, traced)
        assert plain.timings is None
        assert set(traced.timings) == set(KERNEL_STAGES)
        assert all(seconds >= 0.0 for seconds in traced.timings.values())
        assert tracer.counts["commit"] == traced.rounds

    def test_noop_enabled_tracer_matches_and_collects_nothing(self):
        spec = small_spec(backend="bitset")
        plain = run_scenario(spec)
        traced = run_scenario(spec, tracer=NullTracer(enabled=True))
        assert not diff_results(plain, traced)
        assert traced.timings is None

    def test_shared_tracer_attributes_only_each_runs_seconds(self):
        spec = small_spec(backend="bitset")
        tracer = TimingTracer()
        first = run_scenario(spec, tracer=tracer)
        second = run_scenario(spec, tracer=tracer)
        for stage in KERNEL_STAGES:
            assert first.timings[stage] + second.timings[stage] == pytest.approx(
                tracer.totals[stage]
            )

    def test_batch_lanes_share_group_stage_seconds(self):
        numpy = pytest.importorskip("numpy")  # noqa: F841
        from repro.batch.backend import BatchBackend

        spec = small_spec(repetitions=3)
        backend = BatchBackend()
        plain = backend.run_batch(spec)
        tracer = TimingTracer()
        traced = backend.run_batch(spec, tracer=tracer)
        for untraced_result, traced_result in zip(plain, traced):
            assert not diff_results(untraced_result, traced_result)
        # Per-lane shares sum back to the group totals the tracer saw.
        for stage in KERNEL_STAGES:
            lane_sum = sum(result.timings[stage] for result in traced)
            assert lane_sum == pytest.approx(tracer.totals[stage])


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_kind_name_reuse_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="different instrument"):
            registry.gauge("x")

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rounds")
        assert histogram.summary()["mean"] is None
        for value in (1.0, 2.0, 6.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary == {"count": 3, "sum": 9.0, "min": 1.0, "max": 6.0, "mean": 3.0}

    def test_snapshot_and_in_memory_sink(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.gauge("lanes").set(4)
        sink = registry.add_sink(InMemorySink())
        snapshot = registry.publish()
        assert sink.snapshots == [snapshot]
        assert snapshot["counters"] == {"runs": 1.0}
        assert snapshot["gauges"] == {"lanes": 4}

    def test_stderr_sink_renders_one_line_per_instrument(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.histogram("seconds").observe(0.5)
        stream = io.StringIO()
        registry.add_sink(StderrSink(stream))
        registry.publish()
        lines = stream.getvalue().splitlines()
        assert any(line.startswith("[metrics] runs 2") for line in lines)
        assert any("count=1" in line for line in lines if "seconds" in line)

    def test_jsonl_sink_emits_parseable_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        stream = io.StringIO()
        registry.add_sink(JsonlSink(stream))
        registry.publish()
        registry.publish()
        payloads = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(payloads) == 2
        assert payloads[0]["counters"] == {"runs": 1.0}

    def test_track_peak_memory_records_a_positive_peak(self):
        registry = MetricsRegistry()
        with track_peak_memory(registry) as gauge:
            data = [bytearray(1024) for _ in range(64)]
        del data
        assert gauge.value is not None and gauge.value > 0
        assert registry.snapshot()["gauges"]["memory.peak_bytes"] == gauge.value


# ---------------------------------------------------------------------------
# Progress events
# ---------------------------------------------------------------------------


EVENTS = [
    CellStarted(index=0, total=4, scenario="s", repetition=0, backend="bitset"),
    CellCached(index=1, total=4, scenario="s", repetition=1),
    CellCompleted(
        index=2,
        total=4,
        scenario="s",
        repetition=0,
        backend="batch",
        seconds=0.25,
        completed=True,
        rounds=10,
        total_messages=42,
        stage_seconds={"commit": 0.1, "delivery": 0.15},
    ),
    RunFinished(cells=4, executed=2, cached=2, seconds=1.5),
]


class TestEventSerialization:
    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip(self, event):
        payload = json.loads(json.dumps(event_to_dict(event)))
        assert event_from_dict(payload) == event

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown progress event kind"):
            event_from_dict({"event": "nope"})

    def test_unknown_fields_are_rejected(self):
        payload = event_to_dict(EVENTS[1])
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            event_from_dict(payload)

    def test_non_events_are_rejected(self):
        with pytest.raises(TypeError, match="not a progress event"):
            event_to_dict({"event": "cell_started"})


class TestProgressPrinter:
    def test_non_tty_prints_only_the_final_summary(self):
        stream = io.StringIO()  # isatty() is False
        printer = ProgressPrinter(stream, label="sweep")
        for event in EVENTS:
            printer(event)
        output = stream.getvalue()
        assert output.count("\n") == 1
        assert "progress: sweep finished" in output
        assert "2 executed, 2 cached" in output
        assert "\r" not in output


class TestProgressEventOrdering:
    def run_events(self, experiment):
        events = []
        records = experiment.observe(events.append).run().records()
        return events, records

    def make_experiment(self, store, num_nodes=(8, 10), repetitions=2):
        from repro import Experiment

        return (
            Experiment.grid(
                algorithm="flooding",
                adversary="static-random",
                num_nodes=list(num_nodes),
                num_tokens=4,
            )
            .seeds(repetitions)
            .store(store)
        )

    def test_fresh_run_emits_started_completed_pairs_then_finished(self, tmp_path):
        events, records = self.run_events(self.make_experiment(tmp_path / "store"))
        assert len(records) == 4
        kinds = [type(event).__name__ for event in events]
        assert kinds == (
            ["CellStarted", "CellCompleted"] * 4 + ["RunFinished"]
        )
        assert [event.index for event in events[:-1]] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert all(event.total == 4 for event in events[:-1])
        finished = events[-1]
        assert (finished.cells, finished.executed, finished.cached) == (4, 4, 0)
        assert all(
            event.seconds >= 0.0
            for event in events
            if isinstance(event, CellCompleted)
        )

    def test_fully_cached_run_emits_cached_events_only(self, tmp_path):
        store = tmp_path / "store"
        self.make_experiment(store).run().records()
        events, records = self.run_events(self.make_experiment(store))
        assert len(records) == 4
        kinds = [type(event).__name__ for event in events]
        assert kinds == ["CellCached"] * 4 + ["RunFinished"]
        finished = events[-1]
        assert (finished.cells, finished.executed, finished.cached) == (4, 0, 4)

    def test_mixed_run_interleaves_cached_and_fresh_in_plan_order(self, tmp_path):
        store = tmp_path / "store"
        self.make_experiment(store, num_nodes=(8,)).run().records()
        events, records = self.run_events(
            self.make_experiment(store, num_nodes=(8, 10))
        )
        assert len(records) == 4
        kinds = [type(event).__name__ for event in events]
        assert kinds == (
            ["CellCached"] * 2
            + ["CellStarted", "CellCompleted"] * 2
            + ["RunFinished"]
        )
        finished = events[-1]
        assert (finished.executed, finished.cached) == (2, 2)

    def test_replaying_records_does_not_re_emit_events(self, tmp_path):
        events = []
        runs = (
            self.make_experiment(tmp_path / "store")
            .observe(events.append)
            .run()
        )
        runs.records()
        emitted = len(events)
        runs.records()
        assert len(events) == emitted

    def test_timings_flag_attaches_stage_seconds(self, tmp_path):
        events = []
        (
            self.make_experiment(tmp_path / "store")
            .observe(events.append, timings=True)
            .run()
            .records()
        )
        completed = [e for e in events if isinstance(e, CellCompleted)]
        assert completed
        for event in completed:
            assert set(event.stage_seconds) == set(KERNEL_STAGES)

    def test_observe_rejects_non_callables(self, tmp_path):
        from repro.utils.validation import ConfigurationError

        with pytest.raises(ConfigurationError):
            self.make_experiment(tmp_path / "store").observe("not-a-callable")


# ---------------------------------------------------------------------------
# JSONL traces
# ---------------------------------------------------------------------------


class TestTraceFiles:
    def test_writer_round_trips_every_event_kind(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            for event in EVENTS:
                writer(event)
        assert list(read_trace(path)) == EVENTS

    def test_writer_outside_context_raises(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        with pytest.raises(RuntimeError, match="outside its context"):
            writer(EVENTS[0])

    def test_invalid_line_reports_path_and_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "cell_cached", "index": 0, "total": 1, '
                        '"scenario": "s", "repetition": 0}\nnot json\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            list(read_trace(path))

    def test_summarize_aggregates_per_backend_and_stage(self):
        summary = summarize_trace(iter(EVENTS))
        assert summary["cached"] == 1
        assert summary["run"]["executed"] == 2
        batch = summary["backends"]["batch"]
        assert batch["cells"] == 1
        assert batch["seconds"] == pytest.approx(0.25)
        assert batch["stages"] == {"commit": 0.1, "delivery": 0.15}

    def test_render_orders_kernel_stages_and_appends_run_line(self):
        rendered = render_trace_summary(summarize_trace(iter(EVENTS)))
        header = rendered.splitlines()[0]
        assert header.index("Commit") < header.index("Delivery")
        assert "run: 4 cell(s), 2 executed, 2 cached" in rendered

    def test_render_json_is_parseable(self):
        payload = json.loads(
            render_trace_summary(summarize_trace(iter(EVENTS)), "json")
        )
        assert payload[0]["backend"] == "batch"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliTracing:
    def sweep(self, tmp_path, *extra):
        from repro.cli import main

        return main(
            [
                "sweep",
                "--algorithm",
                "flooding",
                "--adversary",
                "static-random",
                "-n",
                "10",
                "--repetitions",
                "2",
                "--store",
                str(tmp_path / "store"),
                *extra,
            ]
        )

    def test_sweep_trace_then_summarize(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        assert self.sweep(tmp_path, "--trace", str(trace_path)) == 0
        captured = capsys.readouterr()
        assert "total runtime:" in captured.out
        assert f"trace -> {trace_path}" in captured.out
        events = list(read_trace(trace_path))
        assert isinstance(events[-1], RunFinished)

        assert main(["trace", "summarize", str(trace_path)]) == 0
        rendered = capsys.readouterr().out
        for stage in ("Commit", "Adversary", "Delivery", "Accounting"):
            assert stage in rendered

    def test_run_trace_covers_the_direct_path(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "run",
                    "--algorithm",
                    "flooding",
                    "--adversary",
                    "static-random",
                    "-n",
                    "10",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        summary = summarize_trace(read_trace(trace_path))
        (entry,) = summary["backends"].values()
        assert entry["cells"] == 1
        assert set(entry["stages"]) == set(KERNEL_STAGES)

    def test_summarize_rejects_traces_without_completed_cells(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "summarize", str(path)]) == 2
        assert "no completed-cell events" in capsys.readouterr().err

    def test_unknown_log_level_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["--log-level", "bogus", "list"]) == 2
        assert "unknown log level" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Logging configuration
# ---------------------------------------------------------------------------


class TestLogging:
    def test_resolve_level_mappings(self):
        assert resolve_level() == logging.WARNING
        assert resolve_level(verbosity=1) == logging.INFO
        assert resolve_level(verbosity=3) == logging.DEBUG
        assert resolve_level(quiet=True) == logging.ERROR
        # An explicit level wins over both flags.
        assert resolve_level("debug", verbosity=0, quiet=True) == logging.DEBUG
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("bogus")

    def test_get_logger_prefixes_module_names(self):
        assert get_logger().name == "repro"
        assert get_logger("batch").name == "repro.batch"
        assert get_logger("repro.batch").name == "repro.batch"

    def test_configure_logging_is_idempotent_and_writes_to_stream(self):
        stream = io.StringIO()
        logger = configure_logging(verbosity=1, stream=stream)
        before = len(logger.handlers)
        configure_logging(verbosity=1, stream=stream)
        assert len(logger.handlers) == before
        get_logger("obs-test").info("hello from the library")
        assert "INFO repro.obs-test: hello from the library" in stream.getvalue()
        # Reconfiguring to quiet suppresses INFO.
        configure_logging(quiet=True, stream=stream)
        size = len(stream.getvalue())
        get_logger("obs-test").info("suppressed")
        assert len(stream.getvalue()) == size


# ---------------------------------------------------------------------------
# Bench overhead gate logic
# ---------------------------------------------------------------------------


class TestObsOverheadGate:
    def entry(self, **overrides):
        entry = {
            "scenario": "bench-flooding-n128-k128",
            "backend": "bitset",
            "trials": 3,
            "seconds": {"plain": 1.0, "disabled": 1.01, "noop": 1.05},
            "overhead_pct": 1.0,
            "noop_overhead_pct": 5.0,
            "equal": True,
            "differences": [],
        }
        entry.update(overrides)
        return entry

    def test_passes_under_the_ceiling(self):
        from repro.benchmark import obs_overhead_gate

        passed, message = obs_overhead_gate(self.entry(), 2.0)
        assert passed
        assert "disabled tracer +1.00%" in message
        assert "no-op spans +5.00%" in message

    def test_fails_over_the_ceiling(self):
        from repro.benchmark import obs_overhead_gate

        passed, _ = obs_overhead_gate(self.entry(overhead_pct=2.5), 2.0)
        assert not passed

    def test_fails_on_result_divergence_even_when_fast(self):
        from repro.benchmark import obs_overhead_gate

        passed, message = obs_overhead_gate(
            self.entry(equal=False, differences=["disabled:rounds"]), 2.0
        )
        assert not passed
        assert "MISMATCH" in message

    def test_entry_metrics_land_in_the_payload(self):
        from repro.benchmark import _record_entry_metrics

        registry = MetricsRegistry()
        _record_entry_metrics(
            registry,
            "bench",
            {
                "equal": False,
                "seconds": {"reference": 2.0, "bitset": 0.5},
                "speedup": {"bitset": 4.0},
            },
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"bench.entries": 1.0, "bench.mismatches": 1.0}
        assert snapshot["histograms"]["bench.speedup.bitset"]["mean"] == 4.0
