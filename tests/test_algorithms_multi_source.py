"""Tests for the Multi-Source-Unicast algorithm (Section 3.2.1, Theorems 3.5 / 3.6)."""

import random

import pytest

from repro.adversaries import (
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
    StaticAdversary,
)
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.core.engine import run_execution
from repro.core.messages import MessageKind
from repro.core.problem import (
    multi_source_problem,
    n_gossip_problem,
    single_source_problem,
    uniform_multi_source_problem,
)
from repro.core.tokens import Token
from repro.dynamics.generators import (
    churn_schedule,
    static_complete_schedule,
    static_path_schedule,
)
from repro.dynamics.stability import stabilize_schedule
from repro.utils.validation import ConfigurationError
from tests.conftest import path_edges


class TestCatalog:
    def test_default_catalog_matches_initial_distribution(self):
        problem = multi_source_problem(8, {0: 2, 3: 3})
        algorithm = MultiSourceUnicastAlgorithm()
        algorithm.setup(problem, random.Random(0))
        assert algorithm.catalog_sources() == [0, 3]
        assert algorithm.catalog_of(0) == problem.tokens_of_source(0)
        assert algorithm.catalog_of(3) == problem.tokens_of_source(3)

    def test_sources_complete_wrt_themselves_at_time_zero(self):
        problem = multi_source_problem(8, {0: 2, 3: 3})
        algorithm = MultiSourceUnicastAlgorithm()
        algorithm.setup(problem, random.Random(0))
        assert algorithm.is_complete_wrt(0, 0)
        assert algorithm.is_complete_wrt(3, 3)
        assert not algorithm.is_complete_wrt(0, 3)
        assert not algorithm.is_complete_wrt(5, 0)

    def test_configure_catalog_rejects_partial_coverage(self):
        problem = multi_source_problem(6, {0: 2, 3: 1})
        algorithm = MultiSourceUnicastAlgorithm()
        algorithm.setup(problem, random.Random(0))
        with pytest.raises(ConfigurationError):
            algorithm.configure_catalog({0: problem.tokens_of_source(0)})

    def test_configure_catalog_rejects_overlapping_assignment(self):
        problem = multi_source_problem(6, {0: 2, 3: 1})
        algorithm = MultiSourceUnicastAlgorithm()
        algorithm.setup(problem, random.Random(0))
        tokens = list(problem.tokens)
        with pytest.raises(ConfigurationError):
            algorithm.configure_catalog({0: tokens, 3: [tokens[0]]})

    def test_explicit_catalog_retargets_sources(self):
        problem = multi_source_problem(6, {0: 2, 3: 1})
        # Assign all tokens to node 5 (it does not initially hold them, so it
        # is not complete w.r.t. itself).
        algorithm = MultiSourceUnicastAlgorithm(source_catalog={5: list(problem.tokens)})
        algorithm.setup(problem, random.Random(0))
        assert algorithm.catalog_sources() == [5]
        assert not algorithm.is_complete_wrt(5, 5)


class TestCorrectness:
    @pytest.mark.parametrize("counts", [{0: 1, 4: 1}, {0: 2, 3: 3, 6: 1}, {1: 4, 2: 4, 5: 4}])
    def test_completes_on_static_path(self, counts):
        problem = multi_source_problem(8, counts)
        result = run_execution(
            problem, MultiSourceUnicastAlgorithm(), StaticAdversary(8, path_edges(8)), seed=1
        )
        assert result.completed
        result.verify_dissemination()

    def test_completes_for_n_gossip(self):
        problem = n_gossip_problem(9)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(9)),
            seed=2,
        )
        assert result.completed

    def test_completes_under_oblivious_churn(self):
        problem = uniform_multi_source_problem(10, 4, 12, seed=3)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            RandomChurnObliviousAdversary(edge_probability=0.3),
            seed=3,
        )
        assert result.completed

    def test_completes_on_three_edge_stable_churn(self):
        problem = uniform_multi_source_problem(10, 3, 9, seed=4)
        schedule = stabilize_schedule(churn_schedule(10, 800, churn_fraction=0.4, seed=4), 3)
        result = run_execution(
            problem, MultiSourceUnicastAlgorithm(), ScheduleAdversary(schedule), seed=4
        )
        assert result.completed

    def test_handles_single_source_problems_too(self):
        problem = single_source_problem(8, 5)
        result = run_execution(
            problem, MultiSourceUnicastAlgorithm(), StaticAdversary(8, path_edges(8)), seed=5
        )
        assert result.completed

    def test_every_node_completes_every_source(self):
        problem = multi_source_problem(7, {0: 2, 4: 2})
        algorithm = MultiSourceUnicastAlgorithm()
        result = run_execution(problem, algorithm, StaticAdversary(7, path_edges(7)), seed=6)
        assert result.completed
        for node in problem.nodes:
            assert algorithm.complete_sources_of(node) == [0, 4]


class TestMessageBounds:
    def test_token_messages_at_most_nk(self):
        problem = uniform_multi_source_problem(10, 3, 12, seed=7)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            RandomChurnObliviousAdversary(edge_probability=0.3),
            seed=7,
        )
        assert result.messages.messages_of_kind(MessageKind.TOKEN) <= 10 * 12

    def test_completeness_messages_at_most_n_squared_s(self):
        problem = uniform_multi_source_problem(10, 4, 12, seed=8)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=5, edge_probability=0.25),
            seed=8,
        )
        announcements = result.messages.messages_of_kind(MessageKind.COMPLETENESS)
        assert announcements <= 10 * 9 * 4

    def test_requests_bounded_by_nk_plus_deletions(self):
        problem = uniform_multi_source_problem(10, 3, 9, seed=9)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=4, edge_probability=0.25),
            seed=9,
        )
        requests = result.messages.messages_of_kind(MessageKind.REQUEST)
        assert requests <= 10 * 9 + result.trace.total_edge_removals()

    def test_one_adversary_competitive_bound_theorem_3_5(self):
        n, s, k = 10, 3, 15
        problem = uniform_multi_source_problem(n, s, k, seed=10)
        result = run_execution(
            problem,
            MultiSourceUnicastAlgorithm(),
            ControlledChurnAdversary(changes_per_round=6, edge_probability=0.25),
            seed=10,
        )
        assert result.completed
        competitive = result.adversary_competitive_messages(alpha=1.0)
        assert competitive <= 3 * (n * n * s + n * k)

    def test_message_cost_grows_with_source_count(self):
        """The O(n²s) announcement term makes more sources more expensive for fixed k."""
        n, k = 12, 12
        few_sources = uniform_multi_source_problem(n, 2, k, seed=11)
        many_sources = uniform_multi_source_problem(n, 12, k, seed=11)
        adversary = lambda: ScheduleAdversary(static_complete_schedule(n))
        few = run_execution(few_sources, MultiSourceUnicastAlgorithm(), adversary(), seed=11)
        many = run_execution(many_sources, MultiSourceUnicastAlgorithm(), adversary(), seed=11)
        assert few.completed and many.completed
        announcements_few = few.messages.messages_of_kind(MessageKind.COMPLETENESS)
        announcements_many = many.messages.messages_of_kind(MessageKind.COMPLETENESS)
        assert announcements_many > announcements_few


class TestRoundComplexity:
    def test_O_nk_rounds_on_three_edge_stable_graphs(self):
        n, k = 10, 6
        problem = uniform_multi_source_problem(n, 3, k, seed=12)
        schedule = stabilize_schedule(churn_schedule(n, 900, churn_fraction=0.4, seed=12), 3)
        result = run_execution(
            problem, MultiSourceUnicastAlgorithm(), ScheduleAdversary(schedule), seed=12
        )
        assert result.completed
        assert result.rounds <= 5 * n * k + 5 * n
