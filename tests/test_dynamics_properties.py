"""Unit tests for dynamic-graph structural statistics."""

import pytest

from repro.dynamics.generators import (
    churn_schedule,
    static_complete_schedule,
    static_path_schedule,
    star_oscillator_schedule,
)
from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.dynamics.properties import (
    churn_statistics,
    degree_statistics,
    schedule_summary,
)


class TestDegreeStatistics:
    def test_complete_graph_degrees(self):
        stats = degree_statistics(static_complete_schedule(6, num_rounds=3))
        assert stats.min_degree == 5
        assert stats.max_degree == 5
        assert stats.mean_degree == pytest.approx(5.0)
        assert stats.mean_edges_per_round == pytest.approx(15.0)

    def test_path_graph_degrees(self):
        stats = degree_statistics(static_path_schedule(6))
        assert stats.min_degree == 1
        assert stats.max_degree == 2

    def test_star_degrees(self):
        stats = degree_statistics(star_oscillator_schedule(7, 4, seed=0))
        assert stats.max_degree == 6
        assert stats.min_degree == 1


class TestChurnStatistics:
    def test_static_schedule_has_only_initial_insertions(self):
        stats = churn_statistics(static_complete_schedule(5, num_rounds=4))
        assert stats.total_insertions == 10
        assert stats.total_deletions == 0

    def test_total_insertions_matches_topological_changes(self):
        schedule = churn_schedule(9, 12, churn_fraction=0.5, seed=1)
        stats = churn_statistics(schedule)
        assert stats.total_insertions == schedule.topological_changes()

    def test_deletions_bounded_by_insertions(self):
        schedule = churn_schedule(9, 12, churn_fraction=0.5, seed=2)
        stats = churn_statistics(schedule)
        assert stats.total_deletions <= stats.total_insertions

    def test_max_insertions_at_least_mean(self):
        schedule = churn_schedule(9, 12, churn_fraction=0.5, seed=3)
        stats = churn_statistics(schedule)
        assert stats.max_insertions_in_a_round >= stats.mean_insertions_per_round


class TestScheduleSummary:
    def test_summary_fields(self):
        schedule = churn_schedule(8, 10, seed=4)
        summary = schedule_summary(schedule)
        assert summary.num_nodes == 8
        assert summary.num_rounds == 10
        assert summary.always_connected
        assert summary.edge_stability >= 1
        assert summary.churn.total_insertions == schedule.topological_changes()

    def test_summary_on_trace(self):
        trace = DynamicGraphTrace([0, 1, 2])
        trace.record_round([(0, 1), (1, 2)])
        trace.record_round([(0, 1), (0, 2)])
        summary = schedule_summary(trace)
        assert summary.num_rounds == 2
        assert summary.always_connected

    def test_disconnected_round_detected(self):
        schedule = GraphSchedule([0, 1, 2], [[(0, 1)]])
        summary = schedule_summary(schedule)
        assert not summary.always_connected
