"""Tests for the naive unicast baseline."""

import pytest

from repro.adversaries import RandomChurnObliviousAdversary, ScheduleAdversary, StaticAdversary
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.core.comm import CommunicationModel
from repro.core.engine import run_execution
from repro.core.problem import n_gossip_problem, single_source_problem
from repro.dynamics.generators import (
    churn_schedule,
    static_complete_schedule,
    static_path_schedule,
)
from tests.conftest import path_edges


class TestNaiveUnicast:
    def test_model_is_unicast(self):
        assert NaiveUnicastAlgorithm.communication_model is CommunicationModel.UNICAST

    def test_completes_on_static_path(self):
        problem = single_source_problem(7, 3)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(7, path_edges(7)), seed=1
        )
        assert result.completed
        result.verify_dissemination()

    def test_completes_on_complete_graph(self):
        problem = n_gossip_problem(8)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(8)),
            seed=2,
        )
        assert result.completed

    def test_completes_under_mild_churn(self):
        problem = single_source_problem(9, 4)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(churn_schedule(9, 300, churn_fraction=0.2, seed=3)),
            seed=3,
        )
        assert result.completed

    def test_each_pair_token_sent_at_most_once(self):
        problem = n_gossip_problem(7)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(7)),
            seed=4,
        )
        # n(n-1) ordered pairs, k tokens: the hard upper bound of Section 1.
        n, k = 7, 7
        assert result.total_messages <= n * (n - 1) * k

    def test_amortized_at_most_n_squared(self):
        problem = n_gossip_problem(8)
        result = run_execution(
            problem,
            NaiveUnicastAlgorithm(),
            ScheduleAdversary(static_complete_schedule(8)),
            seed=5,
        )
        assert result.amortized_messages() <= 8 * 8

    def test_rounds_on_path_exceed_diameter(self):
        problem = single_source_problem(10, 1)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(10, path_edges(10)), seed=6
        )
        assert result.completed
        assert result.rounds >= 9  # the token must traverse the whole path

    def test_deterministic_message_count_for_seed(self):
        problem = single_source_problem(8, 3)
        adversary = lambda: RandomChurnObliviousAdversary(edge_probability=0.3)
        a = run_execution(problem, NaiveUnicastAlgorithm(), adversary(), seed=7)
        b = run_execution(problem, NaiveUnicastAlgorithm(), adversary(), seed=7)
        assert a.total_messages == b.total_messages

    def test_single_node_problem_trivially_complete(self):
        problem = single_source_problem(1, 4)
        result = run_execution(
            problem, NaiveUnicastAlgorithm(), StaticAdversary(1, []), seed=8
        )
        assert result.completed
        assert result.total_messages == 0
