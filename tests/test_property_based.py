"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import fit_power_law
from repro.core.metrics import MessageAccountant
from repro.core.comm import CommunicationModel
from repro.core.messages import TokenMessage
from repro.core.problem import single_source_problem, uniform_multi_source_problem
from repro.core.tokens import Token
from repro.dynamics.connectivity import (
    connected_components,
    ensure_connected,
    is_connected,
    spanning_forest,
)
from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.dynamics.stability import is_sigma_edge_stable, minimum_edge_stability, stabilize_schedule
from repro.utils.ids import normalize_edge

# Strategy helpers -------------------------------------------------------------

node_counts = st.integers(min_value=2, max_value=12)


@st.composite
def edge_set(draw, num_nodes):
    """A random edge set over ``num_nodes`` nodes."""
    pairs = [
        (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)
    ]
    included = draw(st.lists(st.sampled_from(pairs), max_size=len(pairs)))
    return set(included)


@st.composite
def round_sequences(draw):
    """A random sequence of round edge sets over a shared node set."""
    num_nodes = draw(node_counts)
    num_rounds = draw(st.integers(min_value=1, max_value=8))
    rounds = [draw(edge_set(num_nodes)) for _ in range(num_rounds)]
    return num_nodes, rounds


# Connectivity invariants ---------------------------------------------------------


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ensure_connected_always_yields_connected_superset(data):
    num_nodes, rounds = data
    nodes = list(range(num_nodes))
    for edges in rounds:
        repaired = ensure_connected(nodes, edges, random.Random(0))
        assert is_connected(nodes, repaired)
        assert {normalize_edge(u, v) for u, v in edges} <= repaired


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_spanning_forest_preserves_components(data):
    num_nodes, rounds = data
    nodes = list(range(num_nodes))
    for edges in rounds:
        forest = spanning_forest(nodes, edges)
        assert len(forest) <= max(0, num_nodes - 1)
        original = {frozenset(c) for c in connected_components(nodes, edges)}
        reduced = {frozenset(c) for c in connected_components(nodes, forest)}
        assert original == reduced


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_component_count_plus_connectors_is_consistent(data):
    num_nodes, rounds = data
    nodes = list(range(num_nodes))
    for edges in rounds:
        components = connected_components(nodes, edges)
        assert sum(len(c) for c in components) == num_nodes
        assert 1 <= len(components) <= num_nodes


# Dynamic-graph trace invariants -----------------------------------------------------


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_trace_insertions_and_removals_are_consistent(data):
    num_nodes, rounds = data
    trace = DynamicGraphTrace(range(num_nodes))
    for edges in rounds:
        trace.record_round(edges)
    # E_r = E_{r-1} + inserted - removed for every round.
    for round_index in range(1, trace.num_rounds + 1):
        previous = trace.edges_in_round(round_index - 1)
        reconstructed = (
            previous | trace.inserted_edges(round_index)
        ) - trace.removed_edges(round_index)
        assert reconstructed == trace.edges_in_round(round_index)
    # Deletions never exceed insertions because E_0 is empty (footnote 5).
    assert trace.total_edge_removals() <= trace.topological_changes()
    # TC equals the sum of per-round insertions.
    assert trace.topological_changes() == sum(
        len(trace.inserted_edges(r)) for r in range(1, trace.num_rounds + 1)
    )


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_trace_and_schedule_topological_changes_agree(data):
    num_nodes, rounds = data
    trace = DynamicGraphTrace(range(num_nodes))
    for edges in rounds:
        trace.record_round(edges)
    schedule = trace.as_schedule()
    assert schedule.topological_changes() == trace.topological_changes()


# σ-edge stability invariants -----------------------------------------------------------


@given(round_sequences(), st.integers(min_value=1, max_value=5))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_stabilize_schedule_reaches_requested_stability(data, sigma):
    num_nodes, rounds = data
    schedule = GraphSchedule(range(num_nodes), rounds)
    stabilized = stabilize_schedule(schedule, sigma)
    assert is_sigma_edge_stable(stabilized, sigma)
    assert minimum_edge_stability(stabilized) >= sigma
    # Stabilization only ever adds edges.
    for round_index, edges in schedule.iter_rounds():
        assert edges <= stabilized.edges_for_round(round_index)


@given(round_sequences())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_every_sequence_is_at_least_one_edge_stable(data):
    num_nodes, rounds = data
    schedule = GraphSchedule(range(num_nodes), rounds)
    assert minimum_edge_stability(schedule) >= 1
    assert is_sigma_edge_stable(schedule, 1)


# Problem invariants ------------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=1, max_value=30),
)
@settings(deadline=None)
def test_single_source_problem_learning_requirement(num_nodes, num_tokens):
    problem = single_source_problem(num_nodes, num_tokens)
    assert problem.required_token_learnings() == num_tokens * (num_nodes - 1)
    assert problem.num_sources == 1


@given(
    st.integers(min_value=3, max_value=20),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=5, max_value=25),
    st.integers(min_value=0, max_value=1000),
)
@settings(deadline=None)
def test_uniform_multi_source_problem_invariants(num_nodes, num_sources, num_tokens, seed):
    num_sources = min(num_sources, num_nodes)
    num_tokens = max(num_tokens, num_sources)
    problem = uniform_multi_source_problem(num_nodes, num_sources, num_tokens, seed=seed)
    assert problem.num_tokens == num_tokens
    assert problem.num_sources == num_sources
    counts = [len(problem.initial_tokens_of(source)) for source in problem.sources]
    assert max(counts) - min(counts) <= 1
    assert sum(counts) == num_tokens


# Metric invariants ----------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10))
@settings(deadline=None)
def test_accountant_total_equals_sum_of_rounds(per_round_counts):
    accountant = MessageAccountant(CommunicationModel.UNICAST)
    token = Token(0, 1)
    for count in per_round_counts:
        accountant.begin_round()
        for index in range(count):
            accountant.count_unicast(0, 1 + index % 3, TokenMessage(token))
        accountant.end_round()
    stats = accountant.snapshot()
    assert stats.total_messages == sum(per_round_counts)
    assert stats.per_round_messages == per_round_counts
    assert sum(stats.per_node_messages.values()) == stats.total_messages


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=4.0),
)
@settings(deadline=None)
def test_adversary_competitive_cost_is_monotone_in_alpha(total, tc, alpha):
    accountant = MessageAccountant(CommunicationModel.UNICAST)
    accountant.begin_round()
    for index in range(min(total, 200)):
        accountant.count_unicast(0, 1, TokenMessage(Token(0, 1)))
    accountant.end_round()
    stats = accountant.snapshot()
    base = stats.adversary_competitive(tc, alpha=0.0)
    discounted = stats.adversary_competitive(tc, alpha=alpha)
    assert 0.0 <= discounted <= base == stats.total_messages


# Power-law fit sanity ----------------------------------------------------------------------------


@given(
    st.floats(min_value=0.5, max_value=3.0),
    st.floats(min_value=0.1, max_value=50.0),
)
@settings(deadline=None)
def test_fit_power_law_recovers_planted_exponent(exponent, constant):
    xs = [4.0, 8.0, 16.0, 32.0, 64.0]
    ys = [constant * x**exponent for x in xs]
    fitted_exponent, fitted_constant = fit_power_law(xs, ys)
    assert abs(fitted_exponent - exponent) < 1e-6
    assert abs(fitted_constant - constant) / constant < 1e-4
