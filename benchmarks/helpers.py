"""Shared helpers for the benchmark harnesses.

Every benchmark module regenerates one of the paper's evaluation artifacts
(the E1-E10 experiment index).  Benchmarks describe their configurations as
:class:`repro.scenarios.ScenarioSpec` objects and execute them through the
Scenario API, so the same (problem, algorithm, adversary) triples can be
re-run from the CLI (``python -m repro sweep``) or serialized to JSON.  The
helpers here run executions, fit scaling exponents and print the regenerated
tables so that ``pytest benchmarks/ --benchmark-only`` produces both timing
numbers and the paper-shaped series.

Benchmark trajectories persist through the results warehouse: set
``REPRO_BENCH_STORE=<dir>`` and every spec-driven execution is also recorded
in a :class:`repro.results.RunStore` there, so ``python -m repro analyze
$REPRO_BENCH_STORE --bounds`` reproduces the printed series from the same
records the library's own pipeline writes.  Ingestion is idempotent;
re-running a benchmark adds nothing new.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.experiments import fit_power_law
from repro.analysis.reporting import format_table
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.results import RunStore
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.runner import execute, record_from_result, repetition_seed

#: Environment variable naming the benchmark run-store directory.
BENCH_STORE_ENV = "REPRO_BENCH_STORE"

_BENCH_STORES: Dict[str, RunStore] = {}


def bench_store() -> Optional[RunStore]:
    """The benchmark run store, or ``None`` when persistence is not enabled.

    One :class:`RunStore` is kept per path so repeated per-repetition calls
    do not re-open the manifest each time.
    """
    path = os.environ.get(BENCH_STORE_ENV)
    if not path:
        return None
    if path not in _BENCH_STORES:
        _BENCH_STORES[path] = RunStore(path)
    return _BENCH_STORES[path]


def run_spec_once(
    spec: ScenarioSpec, repetition: int = 0, store: Optional[RunStore] = None
) -> ExecutionResult:
    """Run one repetition of a scenario spec and return the full result.

    The run's record is merged into ``store`` (default: the
    ``REPRO_BENCH_STORE`` store) so benchmark trajectories flow through the
    same records-out path as CLI sweeps.
    """
    result = run_scenario(spec, repetition=repetition)
    store = store if store is not None else bench_store()
    if store is not None:
        seed = repetition_seed(spec, repetition)
        store.add([record_from_result(spec, repetition, seed, result)])
    return result


def run_once(
    problem_factory: Callable[[], DisseminationProblem],
    algorithm_factory: Callable[[], object],
    adversary_factory: Callable[[], object],
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> ExecutionResult:
    """Run a single execution from factories (for components the registries
    cannot express, e.g. adversaries replaying a precomputed schedule)."""
    return execute(
        problem_factory(),
        algorithm_factory(),
        adversary_factory(),
        seed=seed,
        max_rounds=max_rounds,
    )


def print_section(title: str, table: str) -> None:
    """Print a titled table (captured by pytest, shown with ``-s`` or on failure)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{table}\n")


def scaling_row(xs: Sequence[float], ys: Sequence[float], label: str) -> List[object]:
    """A table row with the fitted power-law exponent of ``ys`` against ``xs``."""
    exponent, _ = fit_power_law(xs, ys)
    return [label, f"{exponent:.2f}"]


def summary_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Format dictionaries as a table using a fixed column order."""
    return format_table(columns, [[row.get(column, "") for column in columns] for row in rows])
