"""E5 — Theorems 3.5 and 3.6: the Multi-Source-Unicast algorithm.

Theorem 3.5: 1-adversary-competitive message complexity O(n²s + nk); the
completeness-announcement term grows linearly with the number of sources s.
Theorem 3.6: O(nk) rounds on 3-edge-stable graphs.  We sweep the number of
sources at fixed n and k, print the measured per-type message counts next to
the analytic bound, and verify the linear-in-s announcement growth.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, run_spec_once, summary_table
from repro.adversaries import ScheduleAdversary
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.analysis.bounds import multi_source_competitive_bound
from repro.analysis.experiments import fit_power_law
from repro.core.messages import MessageKind
from repro.core.problem import uniform_multi_source_problem
from repro.dynamics.generators import churn_schedule
from repro.dynamics.stability import stabilize_schedule
from repro.scenarios import ScenarioSpec

NUM_NODES = 16
NUM_TOKENS = 32
SOURCE_SWEEP = [1, 2, 4, 8, 16]


def _multi_source_spec(num_sources: int, churn: int = 3, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        problem="multi-source",
        problem_params={
            "num_nodes": NUM_NODES,
            "num_sources": num_sources,
            "num_tokens": NUM_TOKENS,
            "seed": seed,
        },
        algorithm="multi-source",
        adversary="churn",
        adversary_params={"changes_per_round": churn, "edge_probability": 0.3},
        seed=seed,
        name="E5-multi-source-under-churn",
    )


def _run_multi_source(num_sources: int, churn: int = 3, seed: int = 0):
    return run_spec_once(_multi_source_spec(num_sources, churn=churn, seed=seed))


@pytest.mark.parametrize("num_sources", [1, 4, 16])
def test_multi_source_under_churn(benchmark, num_sources):
    """Time one Multi-Source-Unicast execution for a given source count."""
    result = benchmark.pedantic(
        _run_multi_source, args=(num_sources,), rounds=2, iterations=1
    )
    assert result.completed


def test_theorem_3_5_cost_vs_source_count(benchmark):
    """E5: measured per-type message counts against the O(n²s + nk) bound."""

    def build_series():
        rows = []
        for num_sources in SOURCE_SWEEP:
            result = _run_multi_source(num_sources, seed=21)
            rows.append(
                {
                    "s": num_sources,
                    "completed": result.completed,
                    "token msgs": result.messages.messages_of_kind(MessageKind.TOKEN),
                    "completeness msgs": result.messages.messages_of_kind(
                        MessageKind.COMPLETENESS
                    ),
                    "request msgs": result.messages.messages_of_kind(MessageKind.REQUEST),
                    "competitive": round(result.adversary_competitive_messages(), 1),
                    "paper bound n^2 s + nk": multi_source_competitive_bound(
                        NUM_NODES, NUM_TOKENS, num_sources
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows,
        [
            "s",
            "completed",
            "token msgs",
            "completeness msgs",
            "request msgs",
            "competitive",
            "paper bound n^2 s + nk",
        ],
    )
    print_section(
        f"E5 (Theorem 3.5): Multi-Source-Unicast, n = {NUM_NODES}, k = {NUM_TOKENS}", table
    )

    for row in rows:
        assert row["completed"]
        assert row["competitive"] <= 3 * row["paper bound n^2 s + nk"]
        assert row["token msgs"] <= NUM_NODES * NUM_TOKENS
        assert row["completeness msgs"] <= NUM_NODES * (NUM_NODES - 1) * row["s"]
    # Announcement cost grows with s (the O(n²s) term of the theorem).
    announcements = [row["completeness msgs"] for row in rows]
    assert announcements[-1] > announcements[0]


def test_theorem_3_6_rounds_on_stable_graphs(benchmark):
    """E5/E4 companion: O(nk) rounds for the multi-source algorithm."""

    def run_on_stable_graph():
        schedule = stabilize_schedule(
            churn_schedule(NUM_NODES, 8 * NUM_NODES * NUM_TOKENS, churn_fraction=0.4, seed=31),
            sigma=3,
        )
        return run_once(
            lambda: uniform_multi_source_problem(NUM_NODES, 4, NUM_TOKENS, seed=31),
            lambda: MultiSourceUnicastAlgorithm(),
            lambda: ScheduleAdversary(schedule, name="3-edge-stable churn"),
            seed=31,
        )

    result = benchmark.pedantic(run_on_stable_graph, rounds=1, iterations=1)
    print_section(
        "E5 (Theorem 3.6): rounds on a 3-edge-stable graph",
        summary_table(
            [
                {
                    "n": NUM_NODES,
                    "k": NUM_TOKENS,
                    "s": 4,
                    "completed": result.completed,
                    "rounds": result.rounds,
                    "paper bound nk": NUM_NODES * NUM_TOKENS,
                }
            ],
            ["n", "k", "s", "completed", "rounds", "paper bound nk"],
        ),
    )
    assert result.completed
    assert result.rounds <= 5 * NUM_NODES * NUM_TOKENS
