"""E8 / E9 — baselines: static spanning-tree dissemination and flooding.

E8 (Section 1): on a static network, building a spanning tree and pipelining
the tokens costs O(n² + nk) messages, i.e. O(n²/k + n) amortized — linear per
token once k = Ω(n).

E9 (Sections 1-2): naive flooding costs O(n²) amortized local broadcasts and
naive unicast O(n²) amortized unicast messages, independent of k.  Together
these regenerate the baseline columns the paper compares against.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_spec_once, summary_table
from repro.analysis.bounds import (
    flooding_amortized_upper_bound,
    static_spanning_tree_amortized,
)
from repro.scenarios import ScenarioSpec

NUM_NODES = 16
K_SWEEP = [4, 16, 64]


def _baseline_spec(algorithm: str, num_tokens: int, seed: int = 0) -> ScenarioSpec:
    """``algorithm`` on a single-source instance over a static random graph."""
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": NUM_NODES, "num_tokens": num_tokens},
        algorithm=algorithm,
        adversary="static-random",
        adversary_params={"num_nodes": NUM_NODES, "edge_probability": 0.35, "seed": 0},
        seed=seed,
        name=f"E8-E9-{algorithm}-static-baseline",
    )


@pytest.mark.parametrize("num_tokens", K_SWEEP)
def test_spanning_tree_static_baseline(benchmark, num_tokens):
    """Time the spanning-tree baseline for one k on a static random graph."""
    result = benchmark.pedantic(
        run_spec_once,
        args=(_baseline_spec("spanning-tree", num_tokens, seed=61),),
        rounds=2,
        iterations=1,
    )
    assert result.completed


def test_e8_spanning_tree_amortized_series(benchmark):
    """E8: measured amortized cost of the static baseline vs O(n²/k + n)."""

    def build_series():
        rows = []
        for num_tokens in K_SWEEP:
            result = run_spec_once(_baseline_spec("spanning-tree", num_tokens, seed=61))
            rows.append(
                {
                    "k": num_tokens,
                    "completed": result.completed,
                    "total messages": result.total_messages,
                    "measured amortized": round(result.amortized_messages(), 1),
                    "paper bound n^2/k + n": round(
                        static_spanning_tree_amortized(NUM_NODES, num_tokens), 1
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows, ["k", "completed", "total messages", "measured amortized", "paper bound n^2/k + n"]
    )
    print_section(f"E8: static spanning-tree baseline, n = {NUM_NODES}", table)
    amortized = [row["measured amortized"] for row in rows]
    # Amortized cost per token drops as k grows and approaches O(n).
    assert amortized == sorted(amortized, reverse=True)
    assert amortized[-1] <= 4 * NUM_NODES


def test_e9_flooding_and_naive_unicast_series(benchmark):
    """E9: amortized cost of the naive algorithms is roughly k-independent."""

    def build_series():
        rows = []
        for num_tokens in K_SWEEP:
            flood = run_spec_once(_baseline_spec("flooding", num_tokens, seed=71))
            unicast = run_spec_once(_baseline_spec("naive-unicast", num_tokens, seed=71))
            rows.append(
                {
                    "k": num_tokens,
                    "flooding amortized": round(flood.amortized_messages(), 1),
                    "naive unicast amortized": round(unicast.amortized_messages(), 1),
                    "paper bound n^2": flooding_amortized_upper_bound(NUM_NODES),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows, ["k", "flooding amortized", "naive unicast amortized", "paper bound n^2"]
    )
    print_section(f"E9: naive baselines, n = {NUM_NODES}", table)
    for row in rows:
        assert row["flooding amortized"] <= row["paper bound n^2"]
        assert row["naive unicast amortized"] <= row["paper bound n^2"]
