"""E2 / E7 — Section 2: the local-broadcast lower bound and Figure 1.

Theorem 2.3: against the strongly adaptive free-edge adversary, any token-
forwarding algorithm using local broadcast pays Ω(n²/log²n) amortized
messages per token.  We run naive flooding (the matching upper bound) against
the lower-bound adversary, report the measured amortized cost next to the
analytic Ω(n²/log²n) and O(n²) curves, and fit the scaling exponent.

Figure 1 illustrates the free-edge structure: in rounds with few broadcasting
nodes the free edges alone connect the graph (Lemma 2.2).  We regenerate the
corresponding statistic: the number of free-edge components in sparse rounds.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, summary_table
from repro.adversaries.lower_bound import LowerBoundAdversary
from repro.algorithms.flooding import FloodingAlgorithm
from repro.analysis.bounds import flooding_amortized_upper_bound, local_broadcast_lower_bound
from repro.analysis.experiments import fit_power_law
from repro.analysis.potential import PotentialTracker
from repro.core.engine import Simulator
from repro.core.messages import TokenMessage
from repro.core.observation import RoundObservation
from repro.core.problem import random_assignment_problem

SIZES = [8, 12, 16, 20]


def _run_flooding_against_lower_bound(num_nodes: int, seed: int = 0):
    problem = random_assignment_problem(num_nodes, num_nodes, seed=seed)
    adversary = LowerBoundAdversary()
    result = Simulator(problem, FloodingAlgorithm(), adversary, seed=seed).run()
    return problem, adversary, result


@pytest.mark.parametrize("num_nodes", SIZES)
def test_flooding_against_lower_bound_adversary(benchmark, num_nodes):
    """Time one flooding execution against the Section-2 adversary."""
    _, _, result = benchmark.pedantic(
        _run_flooding_against_lower_bound, args=(num_nodes,), rounds=2, iterations=1
    )
    assert result.completed


def test_lower_bound_amortized_series(benchmark):
    """Regenerate the paper-vs-measured series for the Ω(n²/log²n) bound."""

    def build_series():
        rows = []
        for num_nodes in SIZES:
            _, adversary, result = _run_flooding_against_lower_bound(num_nodes, seed=3)
            rows.append(
                {
                    "n": num_nodes,
                    "measured amortized": round(result.amortized_messages(), 1),
                    "paper lower bound n^2/log^2 n": round(
                        local_broadcast_lower_bound(num_nodes), 1
                    ),
                    "paper upper bound n^2": flooding_amortized_upper_bound(num_nodes),
                    "max free components": adversary.max_free_components(),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows,
        [
            "n",
            "measured amortized",
            "paper lower bound n^2/log^2 n",
            "paper upper bound n^2",
            "max free components",
        ],
    )
    print_section("E2: local-broadcast amortized cost vs the Section-2 bounds", table)

    xs = [row["n"] for row in rows]
    ys = [row["measured amortized"] for row in rows]
    exponent, _ = fit_power_law(xs, ys)
    print(f"fitted scaling exponent of measured amortized cost: {exponent:.2f}")
    # Superlinear growth (the paper's bound is quadratic up to log factors; at
    # these sizes the log² divisor flattens the curve noticeably).
    assert exponent > 1.2
    for row in rows:
        assert row["measured amortized"] <= 2 * row["paper upper bound n^2"]


def test_potential_growth_bounded_by_free_components(benchmark):
    """The per-round potential increase never exceeds 2·(components − 1)."""

    def check():
        problem, adversary, result = _run_flooding_against_lower_bound(16, seed=5)
        tracker = PotentialTracker(problem, adversary.kprime_sets)
        trajectory = tracker.replay(result.events, result.rounds)
        violations = 0
        for stats, increase in zip(adversary.round_stats, trajectory.increases):
            if increase > 2 * max(0, stats.free_components - 1):
                violations += 1
        return trajectory, violations

    trajectory, violations = benchmark.pedantic(check, rounds=1, iterations=1)
    assert violations == 0
    assert trajectory.final == 16 * 16


def test_figure1_sparse_rounds_have_connected_free_graph(benchmark):
    """Figure 1 / Lemma 2.2: with few broadcasters the free edges connect everything."""

    def count_components():
        problem = random_assignment_problem(24, 18, seed=9)
        adversary = LowerBoundAdversary()
        adversary.reset(problem, __import__("random").Random(11))
        knowledge = {node: problem.initial_knowledge[node] for node in problem.nodes}
        rows = []
        for broadcasters in (0, 1, 2, 3):
            payloads = {node: None for node in problem.nodes}
            for node in list(problem.nodes)[:broadcasters]:
                payloads[node] = TokenMessage(problem.tokens[node % problem.num_tokens])
            observation = RoundObservation(
                round_index=1, knowledge=knowledge, broadcast_payloads=payloads
            )
            adversary.edges_for_round(1, observation)
            stats = adversary.round_stats[-1]
            rows.append(
                {
                    "broadcasting nodes": broadcasters,
                    "free-edge components": stats.free_components,
                    "non-free edges added": stats.non_free_edges_added,
                }
            )
        return rows

    rows = benchmark.pedantic(count_components, rounds=1, iterations=1)
    table = summary_table(
        rows, ["broadcasting nodes", "free-edge components", "non-free edges added"]
    )
    print_section("E7 (Figure 1): free-edge connectivity in sparse rounds", table)
    assert rows[0]["free-edge components"] == 1
    assert all(row["free-edge components"] <= 4 for row in rows)
