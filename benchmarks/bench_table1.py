"""E1 — Table 1: amortized message complexity of the oblivious algorithm vs k.

The paper's Table 1 lists the amortized message complexity of the
Oblivious-Multi-Source algorithm for four token-count regimes
(k = n^(2/3)·log^(5/3) n, n, n^(3/2), n²).  We regenerate the table twice:

* analytically, by evaluating the Theorem 3.8 bound at a large n (the paper's
  own closed forms);
* empirically, by running the algorithm on laptop-scale n-gossip-style
  instances with growing k and checking that the measured amortized cost
  decreases with k and stays below the naive n² bound.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, summary_table
from repro.adversaries import ScheduleAdversary
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.analysis.reporting import render_table1
from repro.core.problem import uniform_multi_source_problem
from repro.dynamics.generators import rewiring_regular_schedule

ANALYTIC_N = 4096
SIM_N = 18
SIM_TOKEN_COUNTS = [12, 18, 36, 72]
SIM_ROUNDS = 4000


def _run_oblivious(num_tokens: int, seed: int = 0):
    num_sources = min(SIM_N - 2, num_tokens)
    return run_once(
        lambda: uniform_multi_source_problem(SIM_N, num_sources, num_tokens, seed=seed),
        lambda: ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.2),
        lambda: ScheduleAdversary(
            rewiring_regular_schedule(SIM_N, 200, degree=6, seed=seed), name="expander"
        ),
        seed=seed,
        max_rounds=SIM_ROUNDS,
    )


def test_table1_analytic_regeneration(benchmark):
    """Evaluate the paper's Table 1 closed forms (Theorem 3.8) at n = 4096."""
    table = benchmark(render_table1, ANALYTIC_N)
    print_section(f"Table 1 (analytic bounds, n = {ANALYTIC_N})", table)
    assert "k = n^2" in table


@pytest.mark.parametrize("num_tokens", SIM_TOKEN_COUNTS)
def test_table1_simulated_amortized_cost(benchmark, num_tokens):
    """Measure the amortized cost of the oblivious algorithm for one k regime."""
    result = benchmark.pedantic(
        _run_oblivious, args=(num_tokens,), rounds=2, iterations=1
    )
    assert result.completed
    assert result.amortized_messages() < SIM_N**2


def test_table1_simulated_series(benchmark):
    """Regenerate the simulated Table 1 series: amortized cost per k regime."""

    def build_series():
        rows = []
        for num_tokens in SIM_TOKEN_COUNTS:
            result = _run_oblivious(num_tokens, seed=7)
            rows.append(
                {
                    "k": num_tokens,
                    "completed": result.completed,
                    "total_messages": result.total_messages,
                    "amortized": round(result.amortized_messages(), 2),
                    "n^2 (naive)": SIM_N**2,
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(rows, ["k", "completed", "total_messages", "amortized", "n^2 (naive)"])
    print_section(f"Table 1 (simulated, n = {SIM_N}, oblivious adversary)", table)
    assert all(row["completed"] for row in rows)
    amortized = [row["amortized"] for row in rows]
    # The paper's shape: amortized cost per token decreases as k grows and is
    # subquadratic throughout.
    assert amortized[-1] < amortized[0]
    assert all(value < SIM_N**2 for value in amortized)
