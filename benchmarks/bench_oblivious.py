"""E6 — Theorem 3.8: the Oblivious-Multi-Source algorithm under an oblivious adversary.

For many-source instances (s large, k = o(n²)) the random-walk source
reduction gives total message complexity O(n^{5/2} k^{1/4} log^{5/4} n) and
subquadratic amortized cost, versus the Ω(n²) amortized cost of running the
Multi-Source-Unicast algorithm directly on n-gossip-style instances.  We
compare the two algorithms on the same instances and print the paper-vs-
measured series.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, summary_table
from repro.adversaries import ScheduleAdversary
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.analysis.bounds import oblivious_amortized_bound
from repro.core.problem import n_gossip_problem
from repro.dynamics.generators import rewiring_regular_schedule

SIZES = [12, 16, 20]


def _adversary(num_nodes: int, seed: int):
    return ScheduleAdversary(
        rewiring_regular_schedule(num_nodes, 300, degree=6, seed=seed), name="expander"
    )


def _run(algorithm_factory, num_nodes: int, seed: int = 0):
    return run_once(
        lambda: n_gossip_problem(num_nodes),
        algorithm_factory,
        lambda: _adversary(num_nodes, seed),
        seed=seed,
        max_rounds=6000,
    )


@pytest.mark.parametrize("num_nodes", SIZES)
def test_oblivious_algorithm_on_n_gossip(benchmark, num_nodes):
    """Time Algorithm 2 (forced two-phase) on an n-gossip instance."""
    result = benchmark.pedantic(
        _run,
        args=(
            lambda: ObliviousMultiSourceAlgorithm(
                force_two_phase=True, center_probability=0.2
            ),
            num_nodes,
        ),
        rounds=2,
        iterations=1,
    )
    assert result.completed


def test_theorem_3_8_vs_multi_source_series(benchmark):
    """E6: total and amortized cost of Algorithm 2 vs plain Multi-Source-Unicast."""

    def build_series():
        rows = []
        for num_nodes in SIZES:
            plain = _run(MultiSourceUnicastAlgorithm, num_nodes, seed=41)
            walks = _run(
                lambda: ObliviousMultiSourceAlgorithm(
                    force_two_phase=True, center_probability=0.2
                ),
                num_nodes,
                seed=41,
            )
            rows.append(
                {
                    "n": num_nodes,
                    "k = s = n": num_nodes,
                    "multi-source msgs": plain.total_messages,
                    "oblivious msgs": walks.total_messages,
                    "oblivious amortized": round(walks.amortized_messages(), 1),
                    "naive n^2": num_nodes**2,
                    "paper bound (amortized)": round(
                        oblivious_amortized_bound(num_nodes, num_nodes), 1
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows,
        [
            "n",
            "k = s = n",
            "multi-source msgs",
            "oblivious msgs",
            "oblivious amortized",
            "naive n^2",
            "paper bound (amortized)",
        ],
    )
    print_section("E6 (Theorem 3.8): source reduction vs plain Multi-Source-Unicast", table)
    for row in rows:
        # Who wins: the random-walk source reduction beats the O(n²s) algorithm.
        assert row["oblivious msgs"] < row["multi-source msgs"]
        # Subquadratic amortized cost.
        assert row["oblivious amortized"] < row["naive n^2"]


def test_phase1_walk_cost_stays_moderate(benchmark):
    """The random-walk phase itself costs only a fraction of the total messages."""

    def run_and_split():
        algorithm = ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.2)
        result = run_once(
            lambda: n_gossip_problem(18),
            lambda: algorithm,
            lambda: _adversary(18, 51),
            seed=51,
            max_rounds=6000,
        )
        return algorithm, result

    algorithm, result = benchmark.pedantic(run_and_split, rounds=1, iterations=1)
    print_section(
        "E6: phase breakdown",
        summary_table(
            [
                {
                    "phase-1 rounds": algorithm.phase1_rounds,
                    "phase-1 token msgs": algorithm.phase1_messages,
                    "total msgs": result.total_messages,
                    "centers": len(algorithm.centers),
                }
            ],
            ["phase-1 rounds", "phase-1 token msgs", "total msgs", "centers"],
        ),
    )
    assert result.completed
    assert algorithm.phase1_messages < result.total_messages
