"""Backend benchmark: reference vs bitset wall-clock on identical scenarios.

Unlike the E1-E10 harnesses (which regenerate the paper's *message* series),
this benchmark measures the one thing the paper's cost model ignores:
wall-clock.  Every grid point runs the same seeded scenario under every
registered-and-supported backend, asserts the results are field-identical
(rounds, messages, token learnings, ``TC(E)``), and records the speedup of
the fast path over the reference engine.

The trajectory is written to ``BENCH_backends.json`` (override with
``--output``) and, when ``REPRO_BENCH_STORE`` is set, each reference
execution's record is merged into that results store — the same records-out
path as CLI sweeps, so ``python -m repro analyze $REPRO_BENCH_STORE``
reads the benchmark runs too.

Usage::

    python benchmarks/bench_backends.py             # full grid (incl. n=128)
    python benchmarks/bench_backends.py --quick     # CI-sized grid
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

if __package__ in (None, ""):  # script mode: put the repo root on sys.path
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.backends import get_backend
from repro.backends.differential import diff_results
from repro.scenarios import (
    ScenarioSpec,
    materialize,
    record_from_result,
    repetition_seed,
)

#: Matches benchmarks.helpers.BENCH_STORE_ENV (kept import-light so the file
#: runs as a plain script).
BENCH_STORE_ENV = "REPRO_BENCH_STORE"

#: The backends every grid point is timed under; the first is ground truth.
BACKENDS = ("reference", "bitset")


def _flooding_spec(num_nodes: int, rounds_per_token: int = 8) -> ScenarioSpec:
    """Flooding with k = n over a static random graph.

    The paper-default phase length of n rounds makes the grid quadratic in
    wall-clock without changing the per-round work being measured; 8 rounds
    per phase completes every phase on these dense graphs and keeps the
    reference runs CI-sized.
    """
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": rounds_per_token},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-flooding-n{num_nodes}-k{num_nodes}",
    )


def _single_source_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        name=f"bench-single-source-n{num_nodes}-k{num_tokens}",
    )


def _spanning_tree_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="spanning-tree",
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-spanning-tree-n{num_nodes}-k{num_tokens}",
    )


def grid(quick: bool) -> List[ScenarioSpec]:
    """The benchmark grid; ``quick`` is the CI-sized subset."""
    if quick:
        return [
            _flooding_spec(32),
            _single_source_spec(24, 32),
            _spanning_tree_spec(24, 24),
        ]
    return [
        _flooding_spec(64),
        _flooding_spec(128),
        _single_source_spec(64, 96),
        _spanning_tree_spec(64, 64),
    ]


def _bench_store():
    path = os.environ.get(BENCH_STORE_ENV)
    if not path:
        return None
    from repro.results import RunStore

    return RunStore(path)


def run_entry(spec: ScenarioSpec, store=None) -> Dict[str, Any]:
    """Time one scenario under every backend and diff against the reference.

    Both backends run with ``keep_trace=False`` (the memory-shedding mode)
    so the comparison measures execution, not trace storage.
    """
    seed = repetition_seed(spec, 0)
    timings: Dict[str, float] = {}
    results = {}
    for backend_name in BACKENDS:
        backend = get_backend(backend_name)
        scenario = materialize(spec)
        start = time.perf_counter()
        result = backend.run(
            scenario.problem,
            scenario.algorithm,
            scenario.adversary,
            seed=seed,
            max_rounds=spec.max_rounds,
            keep_trace=False,
        )
        timings[backend_name] = time.perf_counter() - start
        results[backend_name] = result
    reference = results[BACKENDS[0]]
    differences: List[str] = []
    for backend_name in BACKENDS[1:]:
        differences.extend(
            difference.field
            for difference in diff_results(
                reference, results[backend_name], compare_graphs=False
            )
        )
    if store is not None:
        store.add([record_from_result(spec, 0, seed, reference)])
    reference_seconds = timings[BACKENDS[0]]
    return {
        "scenario": spec.label,
        "algorithm": spec.algorithm,
        "adversary": spec.adversary,
        "n": spec.problem_params["num_nodes"],
        "k": spec.problem_params.get(
            "num_tokens", spec.problem_params["num_nodes"]
        ),
        "completed": reference.completed,
        "rounds": reference.rounds,
        "total_messages": reference.total_messages,
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "speedup": {
            name: round(reference_seconds / timings[name], 2)
            for name in BACKENDS[1:]
        },
        "equal": not differences,
        "differences": differences,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run the CI-sized grid only"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_backends.json",
        help="trajectory file to write (default BENCH_backends.json)",
    )
    args = parser.parse_args(argv)

    store = _bench_store()
    entries = []
    for spec in grid(args.quick):
        entry = run_entry(spec, store=store)
        entries.append(entry)
        speedups = ", ".join(
            f"{name} {entry['speedup'][name]}x" for name in BACKENDS[1:]
        )
        status = "ok" if entry["equal"] else f"MISMATCH: {entry['differences']}"
        print(
            f"{entry['scenario']}: n={entry['n']} k={entry['k']} "
            f"rounds={entry['rounds']} reference={entry['seconds']['reference']}s "
            f"({speedups}) [{status}]"
        )

    payload = {
        "benchmark": "backends",
        "grid": "quick" if args.quick else "full",
        "backends": list(BACKENDS),
        "entries": entries,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if store is not None:
        print(f"records merged into {store.path}")

    if not all(entry["equal"] for entry in entries):
        print("backend results diverged; see the differences fields", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
