"""Backend benchmark: reference vs bitset wall-clock on identical scenarios.

Thin wrapper over :mod:`repro.benchmark` (the grid and timing logic live in
the package so ``python -m repro bench`` reproduces the same trajectory from
the installed entry point).  Every grid point runs the same seeded scenario
under every registered-and-timed backend, asserts the results are
field-identical (rounds, messages, token learnings, ``TC(E)``), and records
the speedup of the fast path over the reference engine.

The trajectory is written to ``BENCH_backends.json`` (override with
``--output``) and, when ``REPRO_BENCH_STORE`` is set, each reference
execution's record is merged into that results store — the same records-out
path as CLI sweeps, so ``python -m repro analyze $REPRO_BENCH_STORE``
reads the benchmark runs too.

Usage::

    python benchmarks/bench_backends.py             # full grid (incl. n=128)
    python benchmarks/bench_backends.py --quick     # CI-sized grid
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

if __package__ in (None, ""):  # script mode: put the repo root on sys.path
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.benchmark import bench_store, run_benchmark


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run the CI-sized grid only"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="timings per backend and grid point; the best is kept (default 1)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_backends.json",
        help="trajectory file to write (default BENCH_backends.json)",
    )
    args = parser.parse_args(argv)

    store = bench_store()
    payload = run_benchmark(
        quick=args.quick, repeat=args.repeat, store=store, progress=print
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if store is not None:
        print(f"records merged into {store.path}")

    if not all(entry["equal"] for entry in payload["entries"]):
        print("backend results diverged; see the differences fields", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
