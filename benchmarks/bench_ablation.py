"""E10 — ablations: churn budget, the competitive parameter α and edge stability σ.

The adversary-competitive measure (Definition 1.3) is the paper's main
modelling contribution.  These ablations show how the measured quantities
react to the knobs the definition introduces:

* sweeping the per-round churn budget raises the raw message count of the
  Single-Source-Unicast algorithm roughly linearly in TC(E), while the
  α = 1 competitive cost stays inside the O(n² + nk) envelope;
* sweeping α interpolates between raw message complexity (α = 0) and a
  fully churn-discounted cost;
* sweeping the stability parameter σ shows the round complexity stabilising
  once σ ≥ 3 (the assumption of Theorems 3.4 / 3.6).
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, summary_table
from repro.adversaries import ControlledChurnAdversary, ScheduleAdversary
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.analysis.bounds import single_source_competitive_bound
from repro.core.problem import single_source_problem
from repro.dynamics.generators import star_oscillator_schedule
from repro.dynamics.stability import stabilize_schedule

NUM_NODES = 14
NUM_TOKENS = 28
CHURN_SWEEP = [0, 2, 5, 10, 20]
ALPHA_SWEEP = [0.0, 0.5, 1.0, 2.0]
SIGMA_SWEEP = [1, 2, 3, 5]


def _run_with_churn(churn: int, seed: int = 0):
    return run_once(
        lambda: single_source_problem(NUM_NODES, NUM_TOKENS),
        lambda: SingleSourceUnicastAlgorithm(),
        lambda: ControlledChurnAdversary(changes_per_round=churn, edge_probability=0.3),
        seed=seed,
    )


@pytest.mark.parametrize("churn", [0, 5, 20])
def test_single_source_churn_ablation(benchmark, churn):
    """Time the single-source algorithm under a specific churn budget."""
    result = benchmark.pedantic(_run_with_churn, args=(churn,), rounds=2, iterations=1)
    assert result.completed


def test_e10_churn_budget_sweep(benchmark):
    """Raw cost grows with TC(E); the competitive cost stays in the envelope."""

    def build_series():
        rows = []
        for churn in CHURN_SWEEP:
            result = _run_with_churn(churn, seed=81)
            rows.append(
                {
                    "churn/round": churn,
                    "TC(E)": result.topological_changes,
                    "total messages": result.total_messages,
                    "competitive (alpha=1)": round(result.adversary_competitive_messages(), 1),
                    "paper envelope n^2 + nk": single_source_competitive_bound(
                        NUM_NODES, NUM_TOKENS
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows,
        ["churn/round", "TC(E)", "total messages", "competitive (alpha=1)",
         "paper envelope n^2 + nk"],
    )
    print_section("E10a: churn-budget sweep (Single-Source-Unicast)", table)
    tcs = [row["TC(E)"] for row in rows]
    assert tcs == sorted(tcs)
    envelope = 3 * single_source_competitive_bound(NUM_NODES, NUM_TOKENS)
    for row in rows:
        assert row["competitive (alpha=1)"] <= envelope


def test_e10_alpha_sweep(benchmark):
    """The α knob of Definition 1.3 interpolates the discounted cost."""

    def build_series():
        result = _run_with_churn(10, seed=91)
        rows = []
        for alpha in ALPHA_SWEEP:
            rows.append(
                {
                    "alpha": alpha,
                    "TC(E)": result.topological_changes,
                    "competitive cost": round(
                        result.adversary_competitive_messages(alpha=alpha), 1
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(rows, ["alpha", "TC(E)", "competitive cost"])
    print_section("E10b: alpha sweep of the adversary-competitive measure", table)
    costs = [row["competitive cost"] for row in rows]
    assert costs == sorted(costs, reverse=True)


def test_e10_edge_stability_sweep(benchmark):
    """Round complexity on a churn-heavy star drops sharply once σ ≥ 3."""

    def build_series():
        rows = []
        base = star_oscillator_schedule(NUM_NODES, 12 * NUM_NODES * NUM_TOKENS, period=1, seed=97)
        for sigma in SIGMA_SWEEP:
            schedule = stabilize_schedule(base, sigma)
            result = run_once(
                lambda: single_source_problem(NUM_NODES, NUM_TOKENS),
                lambda: SingleSourceUnicastAlgorithm(),
                lambda: ScheduleAdversary(schedule, name=f"star sigma={sigma}"),
                seed=97,
                max_rounds=6 * NUM_NODES * NUM_TOKENS,
            )
            rows.append(
                {
                    "sigma": sigma,
                    "completed": result.completed,
                    "rounds": result.rounds,
                    "total messages": result.total_messages,
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(rows, ["sigma", "completed", "rounds", "total messages"])
    print_section("E10c: edge-stability (sigma) sweep on an oscillating star", table)
    by_sigma = {row["sigma"]: row for row in rows}
    # The Theorem 3.4 assumption: 3-edge stability guarantees completion in O(nk).
    assert by_sigma[3]["completed"]
    assert by_sigma[5]["completed"]
    assert by_sigma[3]["rounds"] <= 4 * NUM_NODES * NUM_TOKENS
