"""E3 / E4 — Theorems 3.1 and 3.4: the Single-Source-Unicast algorithm.

Theorem 3.1: the algorithm has 1-adversary-competitive message complexity
O(n² + nk); for k = Ω(n) the amortized adversary-competitive cost is O(n)
(optimal).  Theorem 3.4: on 3-edge-stable dynamic graphs it terminates in
O(nk) rounds.  We sweep n and k under a churn adversary, print the measured
costs next to the analytic bounds, and fit the scaling exponents.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_section, run_once, run_spec_once, summary_table
from repro.adversaries import ScheduleAdversary
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.analysis.bounds import single_source_competitive_bound, single_source_round_bound
from repro.analysis.experiments import fit_power_law
from repro.core.problem import single_source_problem
from repro.dynamics.generators import churn_schedule
from repro.dynamics.stability import stabilize_schedule
from repro.scenarios import ScenarioSpec

N_SWEEP = [8, 12, 16, 24]
K_FACTOR = 2  # k = 2n so that the O(n) amortized regime applies


def _single_source_spec(
    num_nodes: int, num_tokens: int, churn: int, seed: int = 0
) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": churn, "edge_probability": 0.3},
        seed=seed,
        name="E3-single-source-under-churn",
    )


def _run_single_source(num_nodes: int, num_tokens: int, churn: int, seed: int = 0):
    return run_spec_once(_single_source_spec(num_nodes, num_tokens, churn, seed=seed))


@pytest.mark.parametrize("num_nodes", N_SWEEP)
def test_single_source_under_churn(benchmark, num_nodes):
    """Time one Single-Source-Unicast execution with k = 2n under churn."""
    result = benchmark.pedantic(
        _run_single_source,
        args=(num_nodes, K_FACTOR * num_nodes, 3),
        rounds=2,
        iterations=1,
    )
    assert result.completed


def test_theorem_3_1_competitive_message_series(benchmark):
    """E3: adversary-competitive cost vs the O(n² + nk) bound."""

    def build_series():
        rows = []
        for num_nodes in N_SWEEP:
            num_tokens = K_FACTOR * num_nodes
            result = _run_single_source(num_nodes, num_tokens, churn=4, seed=13)
            rows.append(
                {
                    "n": num_nodes,
                    "k": num_tokens,
                    "TC(E)": result.topological_changes,
                    "total messages": result.total_messages,
                    "competitive (total - TC)": round(
                        result.adversary_competitive_messages(), 1
                    ),
                    "paper bound n^2 + nk": single_source_competitive_bound(
                        num_nodes, num_tokens
                    ),
                    "amortized competitive": round(
                        result.amortized_adversary_competitive_messages(), 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(
        rows,
        [
            "n",
            "k",
            "TC(E)",
            "total messages",
            "competitive (total - TC)",
            "paper bound n^2 + nk",
            "amortized competitive",
        ],
    )
    print_section("E3 (Theorem 3.1): Single-Source-Unicast under churn", table)

    for row in rows:
        assert row["competitive (total - TC)"] <= 3 * row["paper bound n^2 + nk"]
    xs = [row["n"] for row in rows]
    ys = [max(1.0, row["amortized competitive"]) for row in rows]
    exponent, _ = fit_power_law(xs, ys)
    print(f"fitted exponent of amortized competitive cost vs n: {exponent:.2f}")
    # The O(n) regime: clearly subquadratic growth.
    assert exponent < 1.7


def test_theorem_3_4_round_complexity_on_stable_graphs(benchmark):
    """E4: O(nk) rounds on 3-edge-stable dynamic graphs."""

    def build_series():
        rows = []
        for num_nodes in N_SWEEP:
            num_tokens = K_FACTOR * num_nodes
            schedule = stabilize_schedule(
                churn_schedule(
                    num_nodes, 6 * num_nodes * num_tokens, churn_fraction=0.4, seed=num_nodes
                ),
                sigma=3,
            )
            result = run_once(
                lambda: single_source_problem(num_nodes, num_tokens),
                lambda: SingleSourceUnicastAlgorithm(),
                lambda: ScheduleAdversary(schedule, name="3-edge-stable churn"),
                seed=num_nodes,
            )
            rows.append(
                {
                    "n": num_nodes,
                    "k": num_tokens,
                    "completed": result.completed,
                    "rounds": result.rounds,
                    "paper bound nk": int(single_source_round_bound(num_nodes, num_tokens)),
                }
            )
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = summary_table(rows, ["n", "k", "completed", "rounds", "paper bound nk"])
    print_section("E4 (Theorem 3.4): rounds on 3-edge-stable graphs", table)
    for row in rows:
        assert row["completed"]
        assert row["rounds"] <= 4 * row["paper bound nk"] + 4 * row["n"]
