"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` and ``python setup.py develop`` also work in offline
environments whose setuptools lacks PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
